//! Module 1: question analysis.
//!
//! Produces the same artefacts as AliQAn's first module: the
//! morpho-syntactic analysis of the question, the matched question
//! pattern, the *expected answer type*, and the question's **main
//! Syntactic Blocks** — the SBs handed to the IR-n passage retrieval
//! (Table 1's "Main SBs passed to the IR-n passage retrieval system").
//! The focus noun itself is *excluded* from the main SBs, exactly as the
//! paper argues ("the SB 'country' is not used in Module 2 because it is
//! not usual to find a country description in the form of 'the country of
//! Kuwait'"). Location SBs are expanded through the ontology: "El Prat"
//! resolves to an airport instance whose part-of city is Barcelona, so
//! "Barcelona" joins the retrieval terms.

use crate::patterns::QuestionPattern;
use crate::taxonomy::AnswerType;
use dwqa_common::{Date, Month};
use dwqa_nlp::{analyze_sentence, AnalyzedSentence, EntityKind, Lexicon, NpFeature, SbKind};
use dwqa_ontology::{ConceptKind, Ontology, Relation};

/// One main Syntactic Block elected by the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MainSb {
    /// Surface text ("El Prat", "January of 2004", "to invade").
    pub text: String,
    /// Content lemmas (stop words removed).
    pub lemmas: Vec<String>,
    /// Whether the block is a temporal expression.
    pub is_temporal: bool,
    /// Whether the block names a location (per the ontology).
    pub is_location: bool,
}

/// The full outcome of Module 1.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionAnalysis {
    /// The question as asked.
    pub question: String,
    /// The NLP analysis of the question.
    pub sentence: AnalyzedSentence,
    /// The interrogative lemma, if any.
    pub wh: Option<String>,
    /// The focus noun's lemma ("weather", "country").
    pub focus: Option<String>,
    /// Name of the matched pattern.
    pub pattern_name: String,
    /// Paper-style rendering of the matched pattern.
    pub pattern_description: String,
    /// The expected answer type.
    pub answer_type: AnswerType,
    /// The elected main SBs.
    pub main_sbs: Vec<MainSb>,
    /// Month/year constraint from the question ("January of 2004").
    pub month_year: Option<(Month, i32)>,
    /// Full-date constraint ("the 12th of May, 1997").
    pub full_date: Option<Date>,
    /// Bare-year constraint.
    pub year: Option<i32>,
    /// Location terms (SB texts plus ontology expansions).
    pub locations: Vec<String>,
}

impl QuestionAnalysis {
    /// The retrieval terms for Module 2: content lemmas of the main SBs.
    pub fn retrieval_terms(&self) -> Vec<String> {
        self.retrieval_terms_weighted()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    /// Retrieval terms with weights: numeric parts of temporal SBs (the
    /// day of a dated question) are weighted up so passage selection pins
    /// the right portion of a long page, not just the right page.
    pub fn retrieval_terms_weighted(&self) -> Vec<(String, f64)> {
        let mut terms: Vec<(String, f64)> = Vec::new();
        for (lemma, weight) in self.weighted_term_refs() {
            match terms.iter_mut().find(|(t, _)| t == lemma) {
                Some(entry) => entry.1 = entry.1.max(weight),
                None => terms.push((lemma.to_owned(), weight)),
            }
        }
        terms
    }

    /// Borrowing form of [`QuestionAnalysis::retrieval_terms_weighted`]:
    /// yields every main-SB lemma with its weight **without cloning** —
    /// the retrieval path feeds this straight into
    /// `PassageRetriever::compile_query`, which merges duplicates by max
    /// weight in first-occurrence order (the same normalisation
    /// [`QuestionAnalysis::retrieval_terms_weighted`] applies eagerly).
    pub fn weighted_term_refs(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.main_sbs.iter().flat_map(|sb| {
            sb.lemmas.iter().map(move |lemma| {
                let weight = if sb.is_temporal
                    && lemma.chars().all(|c| c.is_ascii_digit())
                    && lemma.len() <= 2
                {
                    3.0
                } else {
                    1.0
                };
                (lemma.as_str(), weight)
            })
        })
    }
}

fn is_location_sb(ontology: &Ontology, text: &str) -> bool {
    let location = ontology.class_for("location");
    let facility = ontology.class_for("facility");
    ontology.concepts_for(text).iter().any(|&id| {
        let c = ontology.concept(id);
        if c.kind != ConceptKind::Instance {
            return false;
        }
        location.map(|l| ontology.is_a(id, l)).unwrap_or(false)
            || facility.map(|f| ontology.is_a(id, f)).unwrap_or(false)
    })
}

/// Part-of expansion: the *cities* an instance (airport) belongs to. The
/// paper expands "El Prat" to Barcelona; coarser levels (states,
/// countries) are deliberately not used as retrieval terms — their labels
/// only add noise to the passage search.
fn location_expansions(ontology: &Ontology, text: &str) -> Vec<String> {
    let city_class = ontology.class_for("city");
    let mut out = Vec::new();
    for &id in ontology.concepts_for(text) {
        if ontology.concept(id).kind != ConceptKind::Instance {
            continue;
        }
        for &holder in ontology.related(id, Relation::Meronym) {
            let is_city = city_class.map_or(true, |c| ontology.is_a(holder, c));
            if !is_city {
                continue;
            }
            let label = ontology.concept(holder).canonical().to_owned();
            if !out.contains(&label) {
                out.push(label);
            }
        }
    }
    out
}

/// Runs Module 1.
pub fn analyze_question(
    lexicon: &Lexicon,
    ontology: &Ontology,
    patterns: &[QuestionPattern],
    question: &str,
) -> QuestionAnalysis {
    let sentence = analyze_sentence(lexicon, question);
    let tokens = &sentence.tokens;

    // Interrogative.
    let wh = tokens
        .iter()
        .find(|t| t.pos.is_wh())
        .map(|t| t.lemma.clone());

    // Copula: a VBC whose lemmas include "be".
    let has_copula = sentence
        .blocks
        .iter()
        .any(|b| b.kind == SbKind::Vbc && tokens[b.start..b.end].iter().any(|t| t.lemma == "be"));

    // Focus: head of the first common/proper NP.
    let focus_block = sentence.blocks.iter().find(|b| {
        b.kind == SbKind::Np
            && matches!(
                b.feature,
                Some(NpFeature::Comun) | Some(NpFeature::ProperNoun)
            )
    });
    let focus = focus_block.and_then(|b| b.head_lemma(tokens));

    // Pattern selection (priority order, first full match wins).
    let mut ordered: Vec<&QuestionPattern> = patterns.iter().collect();
    ordered.sort_by_key(|p| -p.priority);
    let verb_lemmas: Vec<&str> = sentence
        .blocks
        .iter()
        .filter(|b| b.kind == SbKind::Vbc)
        .flat_map(|b| tokens[b.start..b.end].iter().map(|t| t.lemma.as_str()))
        .collect();
    let matched = ordered
        .iter()
        .find(|p| {
            p.wh_matches(wh.as_deref())
                && (!p.copula || has_copula)
                && p.verb_lemma
                    .as_deref()
                    .map_or(true, |v| verb_lemmas.contains(&v))
                && p.focus_matches(focus.as_deref(), ontology)
        })
        .copied()
        .or_else(|| ordered.last().copied());
    let (pattern_name, pattern_description, answer_type) = match matched {
        Some(p) => (p.name.clone(), p.describe(), p.answer_type),
        None => ("none".to_owned(), String::new(), AnswerType::Object),
    };

    // Main SBs: every NP (and PP-child NP) except the focus block — but
    // only when the matched pattern actually consumed the focus ("the SB
    // 'country' is not used in Module 2"); a focus the pattern ignored
    // ("Iraq" in "When did Iraq invade Kuwait?") stays a retrieval term.
    let mut main_sbs: Vec<MainSb> = Vec::new();
    let focus_consumed = matched.is_some_and(|p| p.needs_focus);
    let focus_range = if focus_consumed {
        focus_block.map(|b| (b.start, b.end))
    } else {
        None
    };
    for block in &sentence.blocks {
        let candidates = match block.kind {
            SbKind::Np => vec![block],
            SbKind::Pp => block.children.iter().collect(),
            SbKind::Vbc => {
                let lemmas: Vec<String> = tokens[block.start..block.end]
                    .iter()
                    .filter(|t| !matches!(t.lemma.as_str(), "be" | "do" | "have" | "not"))
                    .filter(|t| t.pos.is_verb())
                    .map(|t| t.lemma.clone())
                    .collect();
                if !lemmas.is_empty() {
                    main_sbs.push(MainSb {
                        text: format!("to {}", lemmas.join(" ")),
                        lemmas,
                        is_temporal: false,
                        is_location: false,
                    });
                }
                continue;
            }
        };
        for np in candidates {
            if Some((np.start, np.end)) == focus_range {
                continue; // the focus is not used for retrieval
            }
            let text = np.text(tokens);
            let lemmas: Vec<String> = np
                .lemmas(tokens)
                .into_iter()
                .filter(|l| !dwqa_nlp::is_stopword(l))
                .collect();
            if lemmas.is_empty() {
                continue;
            }
            let is_temporal = matches!(
                np.feature,
                Some(NpFeature::Date) | Some(NpFeature::Day) | Some(NpFeature::Numeral)
            );
            let is_location = is_location_sb(ontology, &text);
            main_sbs.push(MainSb {
                text,
                lemmas,
                is_temporal,
                is_location,
            });
        }
    }

    // Ontology expansion of location SBs ("El Prat" → "Barcelona").
    let mut locations: Vec<String> = Vec::new();
    let mut expansions: Vec<MainSb> = Vec::new();
    for sb in &main_sbs {
        if sb.is_location {
            if !locations.contains(&sb.text) {
                locations.push(sb.text.clone());
            }
            for city in location_expansions(ontology, &sb.text) {
                if !locations.contains(&city) {
                    locations.push(city.clone());
                    expansions.push(MainSb {
                        lemmas: dwqa_common::text::label_words(&city),
                        text: city,
                        is_temporal: false,
                        is_location: true,
                    });
                }
            }
        }
    }
    main_sbs.extend(expansions);

    // Temporal constraints from the question's entities.
    let mut month_year = None;
    let mut full_date = None;
    let mut year = None;
    for e in &sentence.entities {
        match e.kind {
            EntityKind::MonthYear { month, year: y } => month_year = Some((month, y)),
            EntityKind::FullDate(d) => full_date = Some(d),
            EntityKind::Year(y) => year = Some(y),
            _ => {}
        }
    }

    QuestionAnalysis {
        question: question.to_owned(),
        sentence,
        wh,
        focus,
        pattern_name,
        pattern_description,
        answer_type,
        main_sbs,
        month_year,
        full_date,
        year,
        locations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{default_patterns, temperature_pattern};
    use dwqa_mdmodel::last_minute_sales;
    use dwqa_ontology::enrich_from_warehouse;
    use dwqa_ontology::{merge_into_upper, schema_to_ontology, upper_ontology, MergeOptions};
    use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

    fn merged_ontology() -> Ontology {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(100.0))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("JFK"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text("El Prat")),
                    ("city_name", Value::text("Barcelona")),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
        wh.load("Last Minute Sales", vec![b.build()]).unwrap();
        let mut domain = schema_to_ontology(wh.schema());
        enrich_from_warehouse(&mut domain, &wh);
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        upper
    }

    fn bank() -> Vec<QuestionPattern> {
        let mut b = default_patterns();
        b.push(temperature_pattern());
        b
    }

    #[test]
    fn paper_question_analysis_matches_table_1() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let qa = analyze_question(
            &lx,
            &onto,
            &bank(),
            "What is the weather like in January of 2004 in El Prat?",
        );
        assert_eq!(qa.wh.as_deref(), Some("what"));
        assert_eq!(qa.focus.as_deref(), Some("weather"));
        assert_eq!(qa.pattern_name, "weather-temperature");
        assert_eq!(qa.answer_type, AnswerType::NumericalTemperature);
        // Main SBs: [January of 2004] [El Prat] [Barcelona] — not "weather".
        let texts: Vec<&str> = qa.main_sbs.iter().map(|s| s.text.as_str()).collect();
        assert!(texts.contains(&"January"), "{texts:?}"); // date SB
        assert!(texts.contains(&"El Prat"), "{texts:?}");
        assert!(texts.contains(&"Barcelona"), "{texts:?}");
        assert!(!texts.contains(&"the weather"));
        assert_eq!(qa.month_year, Some((Month::January, 2004)));
        assert!(qa.locations.contains(&"El Prat".to_owned()));
        assert!(qa.locations.contains(&"Barcelona".to_owned()));
    }

    #[test]
    fn temperature_variant_also_matches() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let qa = analyze_question(
            &lx,
            &onto,
            &bank(),
            "What is the temperature in JFK in January of 2008?",
        );
        assert_eq!(qa.answer_type, AnswerType::NumericalTemperature);
        assert_eq!(qa.month_year, Some((Month::January, 2008)));
        assert!(qa.locations.contains(&"JFK".to_owned()));
        // JFK (airport, via DW) expands to its city through the merged
        // Kennedy International Airport instance.
        assert!(qa.locations.iter().any(|l| l.contains("New York")));
    }

    #[test]
    fn clef_question_matches_country_pattern() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let qa = analyze_question(
            &lx,
            &onto,
            &bank(),
            "Which country did Iraq invade in 1990?",
        );
        assert_eq!(qa.answer_type, AnswerType::PlaceCountry);
        assert_eq!(qa.focus.as_deref(), Some("country"));
        let texts: Vec<&str> = qa.main_sbs.iter().map(|s| s.text.as_str()).collect();
        assert!(texts.contains(&"Iraq"), "{texts:?}");
        assert!(texts.contains(&"to invade"), "{texts:?}");
        assert!(texts.contains(&"1990"), "{texts:?}");
        assert!(!texts.contains(&"country"));
        assert_eq!(qa.year, Some(1990));
    }

    #[test]
    fn retrieval_terms_are_deduplicated_content_lemmas() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let qa = analyze_question(
            &lx,
            &onto,
            &bank(),
            "What is the weather like in January of 2004 in El Prat?",
        );
        let terms = qa.retrieval_terms();
        assert!(terms.contains(&"january".to_owned()));
        assert!(terms.contains(&"prat".to_owned()));
        assert!(terms.contains(&"barcelona".to_owned()));
        assert!(!terms.contains(&"the".to_owned()));
    }

    #[test]
    fn who_when_where_questions() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let b = bank();
        assert_eq!(
            analyze_question(&lx, &onto, &b, "Who was the mayor of New York?").answer_type,
            AnswerType::Person
        );
        assert_eq!(
            analyze_question(&lx, &onto, &b, "When did Iraq invade Kuwait?").answer_type,
            AnswerType::TemporalDate
        );
        assert_eq!(
            analyze_question(&lx, &onto, &b, "Where did the band play?").answer_type,
            AnswerType::Place
        );
    }

    #[test]
    fn definition_fallback_for_unknown_focus() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let qa = analyze_question(&lx, &onto, &bank(), "What is Sirius?");
        assert_eq!(qa.answer_type, AnswerType::Definition);
    }

    #[test]
    fn taxonomy_classification_breadth() {
        let lx = Lexicon::english();
        let onto = merged_ontology();
        let b = bank();
        let cases: &[(&str, AnswerType)] = &[
            ("Who bought the ticket?", AnswerType::Person),
            (
                "What was the profession of La Guardia?",
                AnswerType::Profession,
            ),
            ("Which group played in Alicante?", AnswerType::Group),
            ("Which city has the biggest airport?", AnswerType::PlaceCity),
            (
                "Which country did Iraq invade in 1990?",
                AnswerType::PlaceCountry,
            ),
            ("What is the capital of Spain?", AnswerType::PlaceCapital),
            ("Where did the flight land?", AnswerType::Place),
            ("Which star is brightest?", AnswerType::Object),
            (
                "What is the price of the ticket?",
                AnswerType::NumericalEconomic,
            ),
            (
                "What percentage of sales increased?",
                AnswerType::NumericalPercentage,
            ),
            ("How many tickets were sold?", AnswerType::NumericalQuantity),
            (
                "Which year was the airport built?",
                AnswerType::TemporalYear,
            ),
            (
                "Which month is warmest in Barcelona?",
                AnswerType::TemporalMonth,
            ),
            (
                "What date did the promotion start?",
                AnswerType::TemporalDate,
            ),
            ("When did the promotion start?", AnswerType::TemporalDate),
            ("What is Sirius?", AnswerType::Definition),
            (
                "What is the temperature in Barcelona?",
                AnswerType::NumericalTemperature,
            ),
        ];
        for (question, expected) in cases {
            let qa = analyze_question(&lx, &onto, &b, question);
            assert_eq!(
                qa.answer_type, *expected,
                "{question:?} classified as {} via {}",
                qa.answer_type, qa.pattern_name
            );
        }
    }

    #[test]
    fn without_enrichment_el_prat_is_not_a_location() {
        // On the bare upper ontology (no DW enrichment/merge), "El Prat"
        // is unknown → no location constraint, no Barcelona expansion.
        let lx = Lexicon::english();
        let onto = upper_ontology();
        let qa = analyze_question(
            &lx,
            &onto,
            &bank(),
            "What is the weather like in January of 2004 in El Prat?",
        );
        assert!(!qa.locations.contains(&"Barcelona".to_owned()));
    }
}
