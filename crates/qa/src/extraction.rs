//! Module 3: extraction of the answer.
//!
//! Applies syntactic-semantic answer patterns to the passages Module 2
//! selected, producing *typed* candidates with provenance — the paper's
//! essential difference from IR: "QA returns a precise answer" that "can
//! be structured in a database (e.g. temperature – city – date)".
//!
//! Candidates are scored by (a) satisfying the expected answer type's
//! lexical shape, (b) overlap with the question's main SBs in the same
//! sentence/passage, (c) satisfying the question's temporal and location
//! constraints, and (d) semantic verification against the ontology (the
//! "semantic preference to the hyponyms of 'country'" of the paper's CLEF
//! example).

use crate::analysis::QuestionAnalysis;
use crate::index::QaIndex;
use crate::taxonomy::AnswerType;
use dwqa_common::{Date, Month};
use dwqa_ir::{DocumentStore, Passage};
use dwqa_nlp::{AnalyzedSentence, EntityKind, NpFeature, SbKind, TempUnit};
use dwqa_ontology::{ConceptKind, Ontology};
use std::fmt;

/// Step-4 axiom: plausible Celsius range for a weather temperature.
pub const TEMP_RANGE_C: (f64, f64) = (-90.0, 60.0);

/// A typed answer value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AnswerValue {
    /// A temperature (normalised to Celsius, original reading kept).
    Temperature {
        /// Value converted to Celsius (Step 4's conversion axiom).
        celsius: f64,
        /// The value as written.
        raw: f64,
        /// The unit as written.
        unit: TempUnit,
    },
    /// A full calendar date.
    Date(Date),
    /// A month + year.
    MonthYear(Month, i32),
    /// A year.
    Year(i32),
    /// A bare number.
    Number(f64),
    /// A percentage.
    Percentage(f64),
    /// A money amount.
    Money {
        /// Amount.
        amount: f64,
        /// Currency word or symbol.
        currency: String,
    },
    /// A proper name (person, place, group, …).
    Name(String),
    /// A defining phrase.
    Phrase(String),
}

impl fmt::Display for AnswerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerValue::Temperature { raw, unit, .. } => write!(f, "{raw}{}", unit.symbol()),
            AnswerValue::Date(d) => write!(f, "{}", d.long_format()),
            AnswerValue::MonthYear(m, y) => write!(f, "{m} {y}"),
            AnswerValue::Year(y) => write!(f, "{y}"),
            AnswerValue::Number(n) => write!(f, "{n}"),
            AnswerValue::Percentage(p) => write!(f, "{p}%"),
            AnswerValue::Money { amount, currency } => write!(f, "{amount} {currency}"),
            AnswerValue::Name(s) | AnswerValue::Phrase(s) => f.write_str(s),
        }
    }
}

/// An extracted answer with provenance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Answer {
    /// The typed value.
    pub value: AnswerValue,
    /// Extraction confidence (higher is better).
    pub score: f64,
    /// Source URL (recorded into the DW by Step 5).
    pub url: String,
    /// The supporting sentence.
    pub sentence: String,
    /// The date the answer refers to, when one could be associated.
    pub context_date: Option<Date>,
    /// The location the answer refers to, when one could be associated.
    pub context_location: Option<String>,
}

impl Answer {
    /// The paper's Table 1 rendering: `(8ºC – Monday, January 31, 2004 –
    /// Barcelona)`.
    pub fn tuple_format(&self) -> String {
        let mut parts = vec![self.value.to_string()];
        if let Some(d) = self.context_date {
            parts.push(d.long_format());
        }
        if let Some(l) = &self.context_location {
            parts.push(l.clone());
        }
        format!("({})", parts.join(" – "))
    }
}

fn folded_contains(haystack: &str, needle: &str) -> bool {
    dwqa_common::text::fold(haystack).contains(&dwqa_common::text::fold(needle))
}

/// Overlap score: how many main-SB lemmas occur in the sentence.
fn sb_overlap(analysis: &QuestionAnalysis, sentence: &AnalyzedSentence) -> f64 {
    let lemmas: Vec<&str> = sentence.tokens.iter().map(|t| t.lemma.as_str()).collect();
    let mut hits = 0usize;
    let mut total = 0usize;
    for sb in &analysis.main_sbs {
        for l in &sb.lemmas {
            total += 1;
            if lemmas.contains(&l.as_str()) {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Finds the nearest full date: the candidate sentence itself, then up to
/// three sentences back (weather pages put the date in a heading above the
/// reading), then one ahead.
fn nearby_date(sentences: &[AnalyzedSentence], idx: usize) -> Option<Date> {
    let date_in = |s: &AnalyzedSentence| {
        s.entities.iter().find_map(|e| match e.kind {
            EntityKind::FullDate(d) => Some(d),
            _ => None,
        })
    };
    if let Some(d) = date_in(&sentences[idx]) {
        return Some(d);
    }
    for back in 1..=3 {
        if back > idx {
            break;
        }
        if let Some(d) = date_in(&sentences[idx - back]) {
            return Some(d);
        }
    }
    sentences.get(idx + 1).and_then(date_in)
}

/// The location the candidate refers to: the first question location found
/// in the candidate sentence, else in the whole passage. City-level
/// locations are preferred (that is what feeds the DW's City level).
fn context_location(
    analysis: &QuestionAnalysis,
    ontology: &Ontology,
    sentence_text: &str,
    passage: &Passage,
) -> (Option<String>, f64) {
    let city_class = ontology.class_for("city");
    let is_city = |label: &str| {
        city_class.is_some_and(|cc| {
            ontology.concepts_for(label).iter().any(|&id| {
                ontology.concept(id).kind == ConceptKind::Instance && ontology.is_a(id, cc)
            })
        })
    };
    let mut best: Option<(String, f64)> = None;
    for loc in &analysis.locations {
        let weight = if folded_contains(sentence_text, loc) {
            0.6
        } else if passage.contains_folded(loc) {
            0.3
        } else {
            continue;
        };
        let weight = weight + if is_city(loc) { 0.1 } else { 0.0 };
        if best.as_ref().map_or(true, |(_, w)| weight > *w) {
            // Store the ontology's canonical spelling, not the question's:
            // answers are cached under a case-folded question key, so two
            // spellings of the same question must produce identical answers.
            let canonical = ontology
                .concepts_for(loc)
                .iter()
                .find(|&&id| ontology.concept(id).kind == ConceptKind::Instance)
                .map(|&id| ontology.concept(id).canonical().to_owned())
                .unwrap_or_else(|| loc.clone());
            best = Some((canonical, weight));
        }
    }
    match best {
        Some((loc, w)) => (Some(loc), w),
        None => (None, 0.0),
    }
}

/// Whether a context date satisfies the question's temporal constraint.
fn date_matches_constraint(analysis: &QuestionAnalysis, date: Date) -> Option<bool> {
    if let Some(d) = analysis.full_date {
        return Some(d == date);
    }
    if let Some((month, year)) = analysis.month_year {
        return Some(date.month() == month && date.year() == year);
    }
    if let Some(year) = analysis.year {
        return Some(date.year() == year);
    }
    None
}

#[allow(clippy::too_many_arguments)] // internal plumbing for one call site
fn push_candidate(
    out: &mut Vec<Answer>,
    analysis: &QuestionAnalysis,
    ontology: &Ontology,
    sentences: &[AnalyzedSentence],
    idx: usize,
    passage: &Passage,
    url: &str,
    value: AnswerValue,
    type_score: f64,
    wants_date_context: bool,
) {
    let sentence = &sentences[idx];
    let mut score = type_score + sb_overlap(analysis, sentence);
    let context_date = if wants_date_context {
        nearby_date(sentences, idx)
    } else {
        None
    };
    if wants_date_context {
        match context_date.map(|d| date_matches_constraint(analysis, d)) {
            Some(Some(true)) => score += 1.0,
            Some(Some(false)) => score -= 1.5, // violates the constraint
            Some(None) => score += 0.2,        // date found, no constraint
            None => score -= 0.5,              // no date association found
        }
    }
    let (context_location, loc_score) =
        context_location(analysis, ontology, &sentence.text, passage);
    score += loc_score;
    // A question that names a place should not be answered from a passage
    // that never mentions it.
    if !analysis.locations.is_empty() && context_location.is_none() {
        score -= 1.2;
    }
    out.push(Answer {
        value,
        score,
        url: url.to_owned(),
        sentence: sentence.text.clone(),
        context_date,
        context_location,
    });
}

fn resolves_to(ontology: &Ontology, text: &str, classes: &[&str]) -> bool {
    classes.iter().any(|class| {
        ontology.class_for(class).is_some_and(|target| {
            ontology
                .concepts_for(text)
                .iter()
                .any(|&id| ontology.is_a(id, target))
        })
    })
}

/// Classes a proper-noun answer must belong to, per answer type.
fn semantic_classes(answer_type: AnswerType) -> &'static [&'static str] {
    match answer_type {
        AnswerType::Person => &["person"],
        AnswerType::Profession => &["profession", "professional"],
        AnswerType::Group => &["group"],
        AnswerType::PlaceCity => &["city"],
        AnswerType::PlaceCountry => &["country"],
        AnswerType::PlaceCapital => &["capital"],
        AnswerType::Place => &["location", "facility"],
        AnswerType::Event => &["event"],
        AnswerType::Object => &["object", "artifact"],
        _ => &[],
    }
}

/// Ontology-backed answers for question types the merged ontology can
/// answer directly (the integration benefit beyond corpus extraction):
/// abbreviation expansion via synonym sets, professions via the taxonomy.
fn ontology_answers(analysis: &QuestionAnalysis, ontology: &Ontology) -> Vec<Answer> {
    let mut out = Vec::new();
    match analysis.answer_type {
        AnswerType::Abbreviation => {
            // "What does JFK stand for?" — the acronym SB's synset holds
            // the expansion as a longer synonym label.
            for sb in &analysis.main_sbs {
                if !dwqa_common::text::is_acronym(&sb.text) {
                    continue;
                }
                for &id in ontology.concepts_for(&sb.text) {
                    let concept = ontology.concept(id);
                    if let Some(expansion) = concept
                        .labels
                        .iter()
                        .filter(|l| !dwqa_common::text::is_acronym(l) && l.contains(' '))
                        .max_by_key(|l| l.len())
                    {
                        out.push(Answer {
                            value: AnswerValue::Phrase(expansion.clone()),
                            score: 2.0,
                            url: "ontology".to_owned(),
                            sentence: concept.gloss.clone(),
                            context_date: None,
                            context_location: None,
                        });
                    }
                }
            }
        }
        AnswerType::Profession => {
            // "What was the profession of La Guardia?" — walk the named
            // instance's hypernym path for a concept under `professional`
            // or `profession`.
            let professional = ontology.class_for("professional");
            let profession = ontology.class_for("profession");
            for sb in &analysis.main_sbs {
                for &id in ontology.concepts_for(&sb.text) {
                    if ontology.concept(id).kind != ConceptKind::Instance {
                        continue;
                    }
                    for ancestor in ontology.hypernym_path(id) {
                        let under = [professional, profession]
                            .iter()
                            .flatten()
                            .any(|&root| ancestor != root && ontology.is_a(ancestor, root));
                        if under {
                            out.push(Answer {
                                value: AnswerValue::Name(
                                    ontology.concept(ancestor).canonical().to_owned(),
                                ),
                                score: 2.0,
                                url: "ontology".to_owned(),
                                sentence: ontology.concept(id).gloss.clone(),
                                context_date: None,
                                context_location: None,
                            });
                            break;
                        }
                    }
                }
            }
        }
        AnswerType::Place => {
            // "Where is El Prat?" — a known instance's part-of chain is an
            // authoritative answer (the ontology located the airport in
            // its city during Steps 2–3).
            for sb in &analysis.main_sbs {
                for &id in ontology.concepts_for(&sb.text) {
                    if ontology.concept(id).kind != ConceptKind::Instance {
                        continue;
                    }
                    for &holder in ontology.related(id, dwqa_ontology::Relation::Meronym) {
                        out.push(Answer {
                            value: AnswerValue::Name(
                                ontology.concept(holder).canonical().to_owned(),
                            ),
                            score: 1.5,
                            url: "ontology".to_owned(),
                            sentence: ontology.concept(id).gloss.clone(),
                            context_date: None,
                            context_location: Some(ontology.concept(holder).canonical().to_owned()),
                        });
                    }
                }
            }
        }
        _ => {}
    }
    out
}

/// Runs Module 3 over the selected passages, returning ranked answers.
pub fn extract_answers(
    analysis: &QuestionAnalysis,
    index: &QaIndex,
    store: &DocumentStore,
    ontology: &Ontology,
    passages: &[Passage],
    k: usize,
) -> Vec<Answer> {
    let mut out: Vec<Answer> = ontology_answers(analysis, ontology);
    for passage in passages {
        let url = &store.get(passage.doc).url;
        let sentences = index.doc_sentences(passage.doc);
        let range = passage.first_sentence
            ..(passage.first_sentence + passage.sentences.len()).min(sentences.len());
        for idx in range {
            let sentence = &sentences[idx];
            match analysis.answer_type {
                AnswerType::NumericalTemperature => {
                    for e in &sentence.entities {
                        if let EntityKind::Temperature { value, unit } = e.kind {
                            let celsius = unit.to_celsius(value);
                            // Step-4 axiom: reject implausible readings.
                            if !(TEMP_RANGE_C.0..=TEMP_RANGE_C.1).contains(&celsius) {
                                continue;
                            }
                            // A temperature question that names a place only
                            // accepts readings attributable to it — the
                            // tuned answer is the full (temperature, date,
                            // city) tuple, and a reading from some other
                            // page cannot feed the DW.
                            if !analysis.locations.is_empty() {
                                let (loc, _) =
                                    context_location(analysis, ontology, &sentence.text, passage);
                                if loc.is_none() {
                                    continue;
                                }
                            }
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Temperature {
                                    celsius,
                                    raw: value,
                                    unit,
                                },
                                1.0,
                                true,
                            );
                        }
                    }
                }
                AnswerType::TemporalDate => {
                    for e in &sentence.entities {
                        match e.kind {
                            EntityKind::FullDate(d) => push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Date(d),
                                1.0,
                                false,
                            ),
                            // A bare year is a coarse but valid date answer
                            // ("When did Iraq invade Kuwait?" → 1990).
                            EntityKind::Year(y) => push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Year(y),
                                0.6,
                                false,
                            ),
                            _ => {}
                        }
                    }
                }
                AnswerType::TemporalMonth => {
                    for e in &sentence.entities {
                        if let EntityKind::MonthYear { month, year } = e.kind {
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::MonthYear(month, year),
                                1.0,
                                false,
                            );
                        }
                    }
                }
                AnswerType::TemporalYear => {
                    for e in &sentence.entities {
                        match e.kind {
                            EntityKind::Year(y) => push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Year(y),
                                1.0,
                                false,
                            ),
                            EntityKind::FullDate(d) => push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Year(d.year()),
                                0.8,
                                false,
                            ),
                            _ => {}
                        }
                    }
                }
                AnswerType::NumericalPercentage => {
                    for e in &sentence.entities {
                        if let EntityKind::Percentage(p) = e.kind {
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Percentage(p),
                                1.0,
                                false,
                            );
                        }
                    }
                }
                AnswerType::NumericalEconomic => {
                    for e in &sentence.entities {
                        if let EntityKind::Money {
                            amount,
                            ref currency,
                        } = e.kind
                        {
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Money {
                                    amount,
                                    currency: currency.clone(),
                                },
                                1.0,
                                false,
                            );
                        }
                    }
                }
                AnswerType::NumericalQuantity
                | AnswerType::NumericalMeasure
                | AnswerType::NumericalAge
                | AnswerType::NumericalPeriod => {
                    // A number, with a unit-ish noun right after for the
                    // measure/period variants.
                    for (ti, t) in sentence.tokens.iter().enumerate() {
                        if t.pos == dwqa_nlp::Pos::CD {
                            // Skip numbers that belong to dates/temperatures.
                            let in_entity = sentence
                                .entities
                                .iter()
                                .any(|e| ti >= e.start && ti < e.end);
                            if in_entity {
                                continue;
                            }
                            let Ok(n) = t.lemma.parse::<f64>() else {
                                continue;
                            };
                            let needs_unit = matches!(
                                analysis.answer_type,
                                AnswerType::NumericalMeasure | AnswerType::NumericalPeriod
                            );
                            let has_unit = matches!(
                                sentence.tokens.get(ti + 1),
                                Some(n) if n.pos.is_noun()
                            );
                            if needs_unit && !has_unit {
                                continue;
                            }
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Number(n),
                                0.8,
                                false,
                            );
                        }
                    }
                }
                AnswerType::Definition => {
                    // "X is/was the Y…" or "X, the Y…" where X is a main SB.
                    let text = &sentence.text;
                    for sb in &analysis.main_sbs {
                        if !folded_contains(text, &sb.text) {
                            continue;
                        }
                        for block in &sentence.blocks {
                            if block.kind == SbKind::Np
                                && matches!(block.feature, Some(NpFeature::Comun))
                                && block.start > 0
                            {
                                let prev = &sentence.tokens[block.start - 1];
                                let after_copula = prev.lemma == "be";
                                let appositive = prev.token.text == ",";
                                if after_copula || appositive {
                                    push_candidate(
                                        &mut out,
                                        analysis,
                                        ontology,
                                        sentences,
                                        idx,
                                        passage,
                                        url,
                                        AnswerValue::Phrase(block.text(&sentence.tokens)),
                                        1.0,
                                        false,
                                    );
                                }
                            }
                        }
                    }
                }
                // Proper-noun types with ontology verification.
                _ => {
                    let classes = semantic_classes(analysis.answer_type);
                    // "Who VERBed …?" prefers the syntactic *subject* of a
                    // sentence containing that verb (the agent), over other
                    // names that merely co-occur with the topic.
                    let question_verbs: Vec<&str> = analysis
                        .main_sbs
                        .iter()
                        .filter(|sb| sb.text.starts_with("to "))
                        .flat_map(|sb| sb.lemmas.iter().map(String::as_str))
                        .collect();
                    let sentence_has_verb = !question_verbs.is_empty()
                        && sentence
                            .tokens
                            .iter()
                            .any(|t| question_verbs.contains(&t.lemma.as_str()));
                    for block in &sentence.blocks {
                        let nps: Vec<&dwqa_nlp::SyntacticBlock> = match block.kind {
                            SbKind::Np => vec![block],
                            SbKind::Pp => block.children.iter().collect(),
                            SbKind::Vbc => continue,
                        };
                        for np in nps {
                            if np.feature != Some(NpFeature::ProperNoun) {
                                continue;
                            }
                            let text = np.text(&sentence.tokens);
                            // Never answer with a term from the question.
                            if analysis.main_sbs.iter().any(|sb| {
                                dwqa_common::text::fold(&sb.text) == dwqa_common::text::fold(&text)
                            }) {
                                continue;
                            }
                            let verified = resolves_to(ontology, &text, classes);
                            // The "semantic preference" of the paper: an
                            // ontology-verified candidate scores far above
                            // an unverified proper noun.
                            let mut type_score = if verified {
                                1.2
                            } else if classes.is_empty() {
                                0.8
                            } else {
                                0.2
                            };
                            if sentence_has_verb && np.role == dwqa_nlp::SbRole::Subject {
                                type_score += 0.8;
                            }
                            push_candidate(
                                &mut out,
                                analysis,
                                ontology,
                                sentences,
                                idx,
                                passage,
                                url,
                                AnswerValue::Name(text),
                                type_score,
                                false,
                            );
                        }
                    }
                }
            }
        }
    }

    // Deduplicate: keep the best-scored instance of each distinct value
    // (+ context date for temperatures: the same reading on two days is
    // two answers).
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
            .then_with(|| a.sentence.cmp(&b.sentence))
    });
    let mut seen: Vec<(String, Option<Date>)> = Vec::new();
    let mut deduped: Vec<Answer> = Vec::new();
    for a in out {
        let key = (a.value.to_string(), a.context_date);
        let celsius_key = match &a.value {
            AnswerValue::Temperature { celsius, .. } => {
                (format!("{:.1}C", celsius), a.context_date)
            }
            _ => key.clone(),
        };
        if seen.contains(&celsius_key) {
            continue;
        }
        seen.push(celsius_key);
        deduped.push(a);
        if deduped.len() == k {
            break;
        }
    }
    deduped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_question;
    use crate::patterns::{default_patterns, temperature_pattern};
    use dwqa_ir::{DocFormat, Document, DocumentStore, Similarity};
    use dwqa_nlp::Lexicon;
    use dwqa_ontology::upper_ontology;

    fn fig4_store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(Document::new(
            "http://www.barcelona-tourist-guide.com/en/weather/weather-january.html",
            DocFormat::Plain,
            "Barcelona weather",
            "Saturday, January 31, 2004\n\
             Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today\n\
             Friday, January 30, 2004\n\
             Barcelona Weather: Temperature 7º C around 44.6 F Light rain today",
        ));
        s.add(Document::new(
            "http://news.example.org/history/jfk",
            DocFormat::Plain,
            "JFK",
            "President John F. Kennedy, known as JFK, was assassinated in 1963. \
             The political temperature in Washington rose sharply.",
        ));
        s
    }

    struct Setup {
        lexicon: Lexicon,
        ontology: Ontology,
        index: QaIndex,
        store: DocumentStore,
    }

    fn setup() -> Setup {
        let lexicon = Lexicon::english();
        let mut ontology = upper_ontology();
        // Make "El Prat" a known Barcelona airport (as Step 2+3 would).
        let airport = ontology.class_for("airport").unwrap();
        let bcn = ontology.concepts_for("Barcelona").first().copied().unwrap();
        let el_prat = ontology.add_concept(
            &["El Prat"],
            "an airport from the data warehouse",
            dwqa_ontology::OntoPos::Noun,
            dwqa_ontology::ConceptKind::Instance,
        );
        ontology.relate(el_prat, dwqa_ontology::Relation::InstanceOf, airport);
        ontology.relate(el_prat, dwqa_ontology::Relation::Meronym, bcn);
        ontology.annotate(el_prat, "source", "dw");
        let store = fig4_store();
        let index = QaIndex::build(&lexicon, &store, 8);
        Setup {
            lexicon,
            ontology,
            index,
            store,
        }
    }

    fn answers_for(s: &Setup, question: &str, k: usize) -> Vec<Answer> {
        let mut bank = default_patterns();
        bank.push(temperature_pattern());
        let analysis = analyze_question(&s.lexicon, &s.ontology, &bank, question);
        let passages = s
            .index
            .passages
            .retrieve(&s.index.ir_index, &analysis.retrieval_terms(), 5);
        let _ = Similarity::Bm25;
        extract_answers(&analysis, &s.index, &s.store, &s.ontology, &passages, k)
    }

    #[test]
    fn paper_query_extracts_the_table_1_tuple() {
        let s = setup();
        let answers = answers_for(
            &s,
            "What is the weather like in January of 2004 in El Prat?",
            5,
        );
        assert!(!answers.is_empty());
        let top = &answers[0];
        match top.value {
            AnswerValue::Temperature { celsius, .. } => {
                assert!(celsius == 8.0 || celsius == 7.0, "got {celsius}");
            }
            ref other => panic!("expected a temperature, got {other:?}"),
        }
        assert_eq!(top.context_location.as_deref(), Some("Barcelona"));
        assert!(top.context_date.is_some());
        assert!(top.url.contains("barcelona-tourist-guide"));
        // The Table 1 tuple shape.
        let tuple = top.tuple_format();
        assert!(
            tuple.starts_with("(8ºC – ") || tuple.starts_with("(7ºC – "),
            "{tuple}"
        );
        assert!(tuple.ends_with("– Barcelona)"), "{tuple}");
    }

    #[test]
    fn both_days_are_extracted_with_their_dates() {
        let s = setup();
        let answers = answers_for(
            &s,
            "What is the temperature in January of 2004 in El Prat?",
            10,
        );
        let dates: Vec<Option<Date>> = answers
            .iter()
            .filter(|a| matches!(a.value, AnswerValue::Temperature { .. }))
            .map(|a| a.context_date)
            .collect();
        assert!(dates.contains(&Date::from_ymd(2004, 1, 31)));
        assert!(dates.contains(&Date::from_ymd(2004, 1, 30)));
    }

    #[test]
    fn fahrenheit_duplicates_are_merged() {
        let s = setup();
        let answers = answers_for(
            &s,
            "What is the temperature in January of 2004 in El Prat?",
            10,
        );
        // 8º C and 46.4 F are the same reading → one answer for Jan 31.
        let jan31: Vec<&Answer> = answers
            .iter()
            .filter(|a| a.context_date == Date::from_ymd(2004, 1, 31))
            .collect();
        assert_eq!(jan31.len(), 1, "{jan31:?}");
    }

    #[test]
    fn political_temperature_does_not_win() {
        let s = setup();
        let answers = answers_for(
            &s,
            "What is the temperature in January of 2004 in El Prat?",
            3,
        );
        for a in &answers {
            assert!(
                !a.url.contains("news.example.org"),
                "distractor leaked into answers: {a:?}"
            );
        }
    }

    #[test]
    fn year_question() {
        let s = setup();
        let answers = answers_for(&s, "Which year was JFK assassinated?", 3);
        assert!(answers
            .iter()
            .any(|a| matches!(a.value, AnswerValue::Year(1963))));
    }

    #[test]
    fn abbreviation_questions_answer_from_the_ontology() {
        let mut s = setup();
        // Merge-style synonym: the airport synset knows both names.
        let kennedy = s.ontology.concepts_for("Kennedy International Airport")[0];
        s.ontology.add_label(kennedy, "JFK");
        let answers = answers_for(&s, "What does JFK stand for?", 3);
        assert!(
            answers.iter().any(|a| matches!(
                &a.value,
                AnswerValue::Phrase(p) if p == "Kennedy International Airport"
            )),
            "{answers:?}"
        );
        assert_eq!(answers[0].url, "ontology");
    }

    #[test]
    fn profession_questions_answer_from_the_taxonomy() {
        let s = setup();
        let answers = answers_for(&s, "What was the profession of La Guardia?", 3);
        assert!(
            answers.iter().any(|a| matches!(
                &a.value,
                AnswerValue::Name(n) if n == "mayor" || n == "politician"
            )),
            "{answers:?}"
        );
    }

    #[test]
    fn who_questions_prefer_the_agent_subject() {
        // The patient co-occurs with the topic (and may even be ontology-
        // verified), but "who VERBed" must pick the subject of the verb.
        let lexicon = Lexicon::english();
        let mut ontology = upper_ontology();
        let person = ontology.class_for("person").unwrap();
        let maria = ontology.add_concept(
            &["Maria Lopez"],
            "a patient from the data warehouse",
            dwqa_ontology::OntoPos::Noun,
            dwqa_ontology::ConceptKind::Instance,
        );
        ontology.relate(maria, dwqa_ontology::Relation::InstanceOf, person);
        let mut store = DocumentStore::new();
        store.add(Document::new(
            "r",
            DocFormat::Plain,
            "",
            "The knee surgery for Maria Lopez cost 4200 euros.
             Doctor Ramirez performed the knee surgery.",
        ));
        let index = QaIndex::build(&lexicon, &store, 8);
        let mut bank = default_patterns();
        bank.push(temperature_pattern());
        let analysis = analyze_question(
            &lexicon,
            &ontology,
            &bank,
            "Who performed the knee surgery?",
        );
        let passages = index
            .passages
            .retrieve(&index.ir_index, &analysis.retrieval_terms(), 5);
        let answers = extract_answers(&analysis, &index, &store, &ontology, &passages, 3);
        assert!(
            matches!(&answers[0].value, AnswerValue::Name(n) if n == "Doctor Ramirez"),
            "{answers:?}"
        );
    }

    #[test]
    fn where_questions_answer_from_meronymy() {
        let s = setup();
        let answers = answers_for(&s, "Where is El Prat?", 3);
        assert!(
            answers.iter().any(|a| matches!(
                &a.value,
                AnswerValue::Name(n) if n == "Barcelona"
            )),
            "{answers:?}"
        );
    }

    #[test]
    fn implausible_temperatures_are_rejected_by_the_axiom() {
        let lexicon = Lexicon::english();
        let ontology = upper_ontology();
        let mut store = DocumentStore::new();
        store.add(Document::new(
            "u",
            DocFormat::Plain,
            "",
            "Saturday, January 31, 2004\nBarcelona Weather: Temperature 900º C today",
        ));
        let index = QaIndex::build(&lexicon, &store, 8);
        let mut bank = default_patterns();
        bank.push(temperature_pattern());
        let analysis = analyze_question(
            &lexicon,
            &ontology,
            &bank,
            "What is the temperature in January of 2004 in Barcelona?",
        );
        let passages = index
            .passages
            .retrieve(&index.ir_index, &analysis.retrieval_terms(), 5);
        let answers = extract_answers(&analysis, &index, &store, &ontology, &passages, 5);
        assert!(answers
            .iter()
            .all(|a| !matches!(a.value, AnswerValue::Temperature { .. })));
    }
}
