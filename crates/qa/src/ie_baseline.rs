//! The Information-Extraction baseline.
//!
//! The paper's reference [1] (Badia 2006) proposes template-filling IE as
//! the bridge between documents and databases. The paper's objection is
//! twofold: IE "does not facilitate the processing of huge amounts of
//! documents" (it scans *everything*, with no IR filtering) and "is
//! limited to a set of predefined templates". This baseline implements
//! exactly that design so both objections become measurable: its cost is
//! linear in the corpus, and questions outside its template set simply
//! return nothing.

use dwqa_common::Date;
use dwqa_ir::DocumentStore;
use dwqa_nlp::{analyze_text, EntityKind, Lexicon, TempUnit};

/// A slot-filling template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IeTemplate {
    /// `(temperature, date, location?)` — the weather template.
    Temperature,
    /// `(amount, currency)` — a price template.
    Price,
}

/// A filled template.
#[derive(Debug, Clone, PartialEq)]
pub struct FilledTemplate {
    /// Which template matched.
    pub template: IeTemplate,
    /// The slots, in template order, rendered as text.
    pub slots: Vec<String>,
    /// The numeric payload (Celsius for temperatures, amount for prices).
    pub value: f64,
    /// Associated date, if the template has a date slot and it filled.
    pub date: Option<Date>,
    /// Source URL.
    pub url: String,
}

/// The IE engine: a fixed template set applied to the whole corpus.
pub struct IeBaseline {
    templates: Vec<IeTemplate>,
}

impl IeBaseline {
    /// Creates the engine with the given template set.
    pub fn new(templates: Vec<IeTemplate>) -> IeBaseline {
        IeBaseline { templates }
    }

    /// Whether any template can serve the given need. Questions outside
    /// the set ("Who was the mayor of New York?") are unanswerable.
    pub fn covers(&self, template: IeTemplate) -> bool {
        self.templates.contains(&template)
    }

    /// Scans the **entire** corpus (no IR filtering — the scaling
    /// objection) and fills every template occurrence.
    pub fn scan(&self, store: &DocumentStore) -> Vec<FilledTemplate> {
        let lexicon = Lexicon::english();
        let mut out = Vec::new();
        for (_, doc) in store.iter() {
            let sentences = analyze_text(&lexicon, &doc.text);
            let mut last_date: Option<Date> = None;
            for s in &sentences {
                for e in &s.entities {
                    if let EntityKind::FullDate(d) = e.kind {
                        last_date = Some(d);
                    }
                }
                for e in &s.entities {
                    match e.kind {
                        EntityKind::Temperature { value, unit }
                            if self.covers(IeTemplate::Temperature) =>
                        {
                            let celsius = unit.to_celsius(value);
                            out.push(FilledTemplate {
                                template: IeTemplate::Temperature,
                                slots: vec![
                                    format!("{value}{}", unit.symbol()),
                                    last_date.map(|d| d.iso_format()).unwrap_or_default(),
                                ],
                                value: celsius,
                                date: last_date,
                                url: doc.url.clone(),
                            });
                            let _ = TempUnit::Celsius;
                        }
                        EntityKind::Money {
                            amount,
                            ref currency,
                        } if self.covers(IeTemplate::Price) => {
                            out.push(FilledTemplate {
                                template: IeTemplate::Price,
                                slots: vec![format!("{amount} {currency}")],
                                value: amount,
                                date: None,
                                url: doc.url.clone(),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ir::{DocFormat, Document};

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(Document::new(
            "weather",
            DocFormat::Plain,
            "",
            "Saturday, January 31, 2004\nBarcelona Weather: Temperature 8º C today",
        ));
        s.add(Document::new(
            "promo",
            DocFormat::Plain,
            "",
            "Last minute flights to Madrid from 49 euros.",
        ));
        s.add(Document::new(
            "history",
            DocFormat::Plain,
            "",
            "Fiorello La Guardia was the mayor of New York.",
        ));
        s
    }

    #[test]
    fn templates_fill_their_slots() {
        let ie = IeBaseline::new(vec![IeTemplate::Temperature, IeTemplate::Price]);
        let filled = ie.scan(&store());
        let temp = filled
            .iter()
            .find(|f| f.template == IeTemplate::Temperature)
            .unwrap();
        assert_eq!(temp.value, 8.0);
        assert_eq!(temp.date, Date::from_ymd(2004, 1, 31));
        let price = filled
            .iter()
            .find(|f| f.template == IeTemplate::Price)
            .unwrap();
        assert_eq!(price.value, 49.0);
    }

    #[test]
    fn questions_outside_the_template_set_are_unanswerable() {
        let ie = IeBaseline::new(vec![IeTemplate::Temperature]);
        assert!(!ie.covers(IeTemplate::Price));
        let filled = ie.scan(&store());
        // The mayor fact exists in the corpus but no template captures it.
        assert!(filled.iter().all(|f| f.template == IeTemplate::Temperature));
    }

    #[test]
    fn scan_visits_every_document() {
        // The defining cost: IE touches all documents regardless of the
        // information need.
        let ie = IeBaseline::new(vec![IeTemplate::Price]);
        let filled = ie.scan(&store());
        assert_eq!(filled.len(), 1);
        // (Cost measured in the benchmark suite; here we just assert the
        // full-corpus semantics produced results from the promo page even
        // though a "temperature question" user never needed it.)
        assert_eq!(filled[0].url, "promo");
    }
}
