//! The indexation phase (Figure 3, left half).
//!
//! "There are two independent indexations, one for the QA process, and
//! another for the IR process." The QA indexation runs the full NLP
//! pipeline over every sentence of every document (the expensive,
//! off-line part); the IR indexation builds the inverted index and the
//! IR-n passage retriever that filter the text the QA process works on.

use dwqa_ir::{DocId, DocumentStore, InvertedIndex, PassageRetriever};
use dwqa_nlp::{analyze_text, AnalyzedSentence, Lexicon};

/// The indexed corpus: linguistic analyses + IR structures.
#[derive(Debug)]
pub struct QaIndex {
    /// Per document, per sentence: the full NLP analysis.
    sentences: Vec<Vec<AnalyzedSentence>>,
    /// The IR inverted index.
    pub ir_index: InvertedIndex,
    /// The IR-n passage retriever.
    pub passages: PassageRetriever,
}

impl QaIndex {
    /// Runs the indexation phase over a document store.
    pub fn build(lexicon: &Lexicon, store: &DocumentStore, passage_window: usize) -> QaIndex {
        Self::build_with_threads(lexicon, store, passage_window, 1)
    }

    /// Like [`QaIndex::build`], analysing documents on `threads` worker
    /// threads (the NLP pass dominates indexation time and is
    /// embarrassingly parallel; the paper runs this phase "off-line …
    /// to speed up as much as possible the searching process").
    pub fn build_with_threads(
        lexicon: &Lexicon,
        store: &DocumentStore,
        passage_window: usize,
        threads: usize,
    ) -> QaIndex {
        let threads = threads.max(1);
        let texts: Vec<&str> = store.iter().map(|(_, d)| d.text.as_str()).collect();
        let sentences: Vec<Vec<AnalyzedSentence>> = if threads == 1 || texts.len() < 2 {
            texts.iter().map(|t| analyze_text(lexicon, t)).collect()
        } else {
            let chunk = texts.len().div_ceil(threads).max(1);
            let results = parking_lot::Mutex::new(vec![Vec::new(); texts.len()]);
            crossbeam::thread::scope(|scope| {
                for (c, chunk_texts) in texts.chunks(chunk).enumerate() {
                    let results = &results;
                    scope.spawn(move |_| {
                        let base = c * chunk;
                        let analysed: Vec<(usize, Vec<AnalyzedSentence>)> = chunk_texts
                            .iter()
                            .enumerate()
                            .map(|(i, t)| (base + i, analyze_text(lexicon, t)))
                            .collect();
                        let mut guard = results.lock();
                        for (i, a) in analysed {
                            guard[i] = a;
                        }
                    });
                }
            })
            .expect("QA indexation worker panicked");
            results.into_inner()
        };
        let (ir_index, passages) = if threads == 1 || texts.len() < 2 {
            (
                InvertedIndex::build(lexicon, store),
                PassageRetriever::build(lexicon, store, passage_window),
            )
        } else {
            (
                InvertedIndex::build_parallel(lexicon, store, threads),
                PassageRetriever::build_parallel(lexicon, store, passage_window, threads),
            )
        };
        QaIndex {
            sentences,
            ir_index,
            passages,
        }
    }

    /// The analysed sentences of a document.
    pub fn doc_sentences(&self, doc: DocId) -> &[AnalyzedSentence] {
        &self.sentences[doc.index()]
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.sentences.len()
    }

    /// Total number of analysed sentences.
    pub fn num_sentences(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ir::{DocFormat, Document};

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(Document::new(
            "a",
            DocFormat::Plain,
            "",
            "The temperature in Barcelona was 8º C. Clear skies all day.",
        ));
        s.add(Document::new(
            "b",
            DocFormat::Plain,
            "",
            "Last minute flights to Madrid were cheap.",
        ));
        s
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let lx = Lexicon::english();
        let mut s = DocumentStore::new();
        for i in 0..20 {
            s.add(Document::new(
                &format!("d{i}"),
                DocFormat::Plain,
                "",
                &format!("The temperature in city {i} was {i}º C. Clear skies."),
            ));
        }
        let seq = QaIndex::build(&lx, &s, 8);
        let par = QaIndex::build_with_threads(&lx, &s, 8, 4);
        assert_eq!(seq.num_docs(), par.num_docs());
        for d in 0..seq.num_docs() {
            assert_eq!(
                seq.doc_sentences(DocId(d as u32)),
                par.doc_sentences(DocId(d as u32)),
                "doc {d}"
            );
        }
    }

    #[test]
    fn build_analyses_every_sentence() {
        let lx = Lexicon::english();
        let idx = QaIndex::build(&lx, &store(), 8);
        assert_eq!(idx.num_docs(), 2);
        assert_eq!(idx.doc_sentences(DocId(0)).len(), 2);
        assert_eq!(idx.doc_sentences(DocId(1)).len(), 1);
        assert_eq!(idx.num_sentences(), 3);
        // The QA-side analysis carries entities…
        assert!(!idx.doc_sentences(DocId(0))[0].entities.is_empty());
        // …and the IR side indexes lemmas.
        assert_eq!(idx.ir_index.df("temperature"), 1);
        assert_eq!(idx.passages.window(), 8);
    }
}
