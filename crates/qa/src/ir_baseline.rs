//! The plain-IR baseline.
//!
//! What the pre-QA integrations the paper criticises actually deliver:
//! "IR returns whole documents, in which the user has to further search
//! for his/her request". The baseline runs the same retrieval machinery
//! but stops there — its output is text, never a typed tuple — so the
//! comparison experiments can quantify the difference (structured-output
//! precision of 0, reading burden in characters, but very low latency).

use dwqa_ir::{DocumentStore, InvertedIndex, Passage, PassageRetriever, Similarity};
use dwqa_nlp::Lexicon;

/// An IR result: a document or passage the user still has to read.
#[derive(Debug, Clone, PartialEq)]
pub struct IrResult {
    /// Source URL.
    pub url: String,
    /// The returned text (whole document or best passage).
    pub text: String,
    /// Retrieval score.
    pub score: f64,
}

impl IrResult {
    /// The user's reading burden, in characters.
    pub fn reading_burden(&self) -> usize {
        self.text.chars().count()
    }

    /// Whether the needle (e.g. the known true answer) occurs in the
    /// returned text — the best an IR user can hope for.
    pub fn contains_answer(&self, needle: &str) -> bool {
        dwqa_common::text::fold(&self.text).contains(&dwqa_common::text::fold(needle))
    }
}

/// A keyword-IR system over the shared index.
pub struct IrBaseline {
    lexicon: Lexicon,
    index: InvertedIndex,
    passages: PassageRetriever,
    urls: Vec<String>,
    texts: Vec<String>,
}

impl IrBaseline {
    /// Indexes the corpus (stop words discarded, as the paper notes).
    pub fn build(store: &DocumentStore) -> IrBaseline {
        let lexicon = Lexicon::english();
        let index = InvertedIndex::build(&lexicon, store);
        let passages = PassageRetriever::build(&lexicon, store, PassageRetriever::DEFAULT_WINDOW);
        IrBaseline {
            lexicon,
            index,
            passages,
            urls: store.iter().map(|(_, d)| d.url.clone()).collect(),
            texts: store.iter().map(|(_, d)| d.text.clone()).collect(),
        }
    }

    /// Document-level retrieval: returns whole documents.
    pub fn search_documents(&self, query: &str, k: usize) -> Vec<IrResult> {
        dwqa_ir::search::search(&self.index, &self.lexicon, query, Similarity::Bm25, k)
            .into_iter()
            .map(|h| IrResult {
                url: self.urls[h.doc.index()].clone(),
                text: self.texts[h.doc.index()].clone(),
                score: h.score,
            })
            .collect()
    }

    /// Passage-level retrieval: the best the IR side offers.
    pub fn search_passages(&self, query: &str, k: usize) -> Vec<IrResult> {
        let terms = dwqa_ir::index::index_terms(&self.lexicon, query);
        self.passages
            .retrieve(&self.index, &terms, k)
            .into_iter()
            .map(|p: Passage| IrResult {
                url: self.urls[p.doc.index()].clone(),
                text: p.text(),
                score: p.score,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ir::{DocFormat, Document};

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(Document::new(
            "weather",
            DocFormat::Plain,
            "",
            "Saturday, January 31, 2004. Barcelona Weather: Temperature 8º C around 46.4 F. \
             More filler sentences follow here. And even more filler text. Plus some more. \
             Another filler sentence. Yet another one. One more for good measure. Final one.",
        ));
        s.add(Document::new(
            "news",
            DocFormat::Plain,
            "",
            "The president travelled to Washington yesterday.",
        ));
        s
    }

    #[test]
    fn ir_returns_text_not_tuples() {
        let ir = IrBaseline::build(&store());
        let results = ir.search_documents("temperature Barcelona January", 2);
        assert_eq!(results[0].url, "weather");
        assert!(results[0].contains_answer("8º C"));
        // The user still has to read the whole thing.
        assert!(results[0].reading_burden() > 100);
    }

    #[test]
    fn passages_shrink_the_burden_but_stay_text() {
        let ir = IrBaseline::build(&store());
        let docs = ir.search_documents("temperature Barcelona", 1);
        let passages = ir.search_passages("temperature Barcelona", 1);
        assert!(!passages.is_empty());
        assert!(passages[0].reading_burden() <= docs[0].reading_burden());
        assert!(passages[0].contains_answer("8º C"));
    }

    #[test]
    fn no_match_returns_empty() {
        let ir = IrBaseline::build(&store());
        assert!(ir.search_documents("volcano", 3).is_empty());
    }
}
