//! AliQAn: the question-answering system of the reproduction.
//!
//! The paper evaluates its DW ⇄ QA model on **AliQAn**, the authors' CLEF
//! system. Figure 3 splits it into an off-line *indexation phase* (NLP
//! analysis + IR index) and a three-module *search phase*:
//!
//! 1. **Question analysis** — syntactic analysis of the question, pattern
//!    matching against syntactic-semantic question patterns, detection of
//!    the *expected answer type* (a 20-class taxonomy over WordNet
//!    based-types), and election of the question's *main Syntactic
//!    Blocks*;
//! 2. **Selection of relevant passages** — the main SBs are handed to the
//!    IR-n passage retrieval system;
//! 3. **Extraction of the answer** — syntactic-semantic answer patterns
//!    locate typed candidates inside the passages and score them.
//!
//! This crate implements the three modules over the substrates
//! (`dwqa-nlp`, `dwqa-ir`, `dwqa-ontology`), the Step-4 *tuning* hook that
//! registers new question patterns and answer axioms, a full pipeline
//! trace that regenerates the paper's Table 1, and the two comparison
//! baselines the paper argues against: plain IR (returns passages the
//! user must read) and template-based Information Extraction (scans the
//! whole corpus with fixed templates).

//! ```
//! use dwqa_qa::{AliQAn, AliQAnConfig, temperature_pattern};
//! use dwqa_ir::{Document, DocumentStore, DocFormat};
//! use dwqa_ontology::upper_ontology;
//!
//! let mut qa = AliQAn::new(upper_ontology(), AliQAnConfig::default());
//! qa.tune(temperature_pattern());                       // Step 4
//! let mut web = DocumentStore::new();
//! web.add(Document::new("u", DocFormat::Plain, "",
//!     "Saturday, January 31, 2004\nBarcelona Weather: Temperature 8º C today"));
//! qa.index_corpus(web);                                  // indexation phase
//! let answers = qa.answer("What is the temperature in January of 2004 in Barcelona?");
//! assert!(answers[0].tuple_format().starts_with("(8ºC"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aliqan;
pub mod analysis;
pub mod extraction;
pub mod ie_baseline;
pub mod index;
pub mod ir_baseline;
pub mod patterns;
pub mod taxonomy;

pub use aliqan::{AliQAn, AliQAnConfig, AliQAnConfigBuilder, PipelineTrace};
pub use analysis::{analyze_question, MainSb, QuestionAnalysis};
pub use extraction::{Answer, AnswerValue};
pub use ie_baseline::{IeBaseline, IeTemplate};
pub use index::QaIndex;
pub use ir_baseline::IrBaseline;
pub use patterns::{default_patterns, temperature_pattern, QuestionPattern};
pub use taxonomy::AnswerType;
