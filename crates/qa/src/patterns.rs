//! Syntactic-semantic question patterns (Module 1's pattern bank).
//!
//! A pattern constrains the interrogative word, optionally requires a
//! copular verb, and semantically constrains the question *focus* (the
//! noun after the wh-word) through the ontology: "[WHICH] [synonym of
//! COUNTRY] […]" matches any focus that is a synonym or hyponym of
//! `country` in the merged ontology. The paper's Step 4 tunes the system
//! by *adding* patterns — [`temperature_pattern`] is exactly the one its
//! experiment adds.

use crate::taxonomy::AnswerType;
use dwqa_ontology::Ontology;

/// A question pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionPattern {
    /// Pattern name (shown in traces).
    pub name: String,
    /// Accepted interrogative lemmas (empty = any interrogative).
    pub wh_lemmas: Vec<String>,
    /// Require a copular "to be" immediately after the wh-word.
    pub copula: bool,
    /// The focus must be a synonym/hyponym of one of these ontology
    /// classes (empty = no semantic requirement).
    pub focus_concepts: Vec<String>,
    /// …or literally one of these lemmas.
    pub focus_literals: Vec<String>,
    /// Whether a focus is required at all.
    pub needs_focus: bool,
    /// A verb lemma that must appear in one of the question's verb chains
    /// ("stand" for "What does X stand for?").
    pub verb_lemma: Option<String>,
    /// The answer type this pattern assigns.
    pub answer_type: AnswerType,
    /// Higher priority patterns are tried first.
    pub priority: i32,
}

impl QuestionPattern {
    fn new(name: &str, answer_type: AnswerType) -> QuestionPattern {
        QuestionPattern {
            name: name.to_owned(),
            wh_lemmas: Vec::new(),
            copula: false,
            focus_concepts: Vec::new(),
            focus_literals: Vec::new(),
            needs_focus: false,
            verb_lemma: None,
            answer_type,
            priority: 0,
        }
    }

    fn wh(mut self, lemmas: &[&str]) -> Self {
        self.wh_lemmas = lemmas.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    fn with_copula(mut self) -> Self {
        self.copula = true;
        self
    }

    fn focus_of(mut self, concepts: &[&str]) -> Self {
        self.focus_concepts = concepts.iter().map(|s| (*s).to_owned()).collect();
        self.needs_focus = true;
        self
    }

    fn focus_word(mut self, literals: &[&str]) -> Self {
        self.focus_literals = literals.iter().map(|s| (*s).to_owned()).collect();
        self.needs_focus = true;
        self
    }

    fn with_priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    fn with_verb(mut self, lemma: &str) -> Self {
        self.verb_lemma = Some(lemma.to_owned());
        self
    }

    /// Whether a focus lemma satisfies this pattern's semantic constraint.
    pub fn focus_matches(&self, focus: Option<&str>, ontology: &Ontology) -> bool {
        if !self.needs_focus {
            return true;
        }
        let Some(focus) = focus else { return false };
        if self.focus_literals.iter().any(|l| l == focus) {
            return true;
        }
        if self.focus_concepts.is_empty() {
            return self.focus_literals.is_empty();
        }
        for concept in &self.focus_concepts {
            let Some(target) = ontology.class_for(concept) else {
                continue;
            };
            // Synonym: the focus is a label of the target synset.
            if ontology.concepts_for(focus).contains(&target) {
                return true;
            }
            // Hyponym: the focus names a class below the target.
            if let Some(focus_class) = ontology.class_for(focus) {
                if ontology.is_a(focus_class, target) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the interrogative lemma satisfies the pattern.
    pub fn wh_matches(&self, wh: Option<&str>) -> bool {
        match wh {
            Some(w) => self.wh_lemmas.is_empty() || self.wh_lemmas.iter().any(|l| l == w),
            None => false,
        }
    }

    /// A human-readable rendering in the paper's style:
    /// `[WHAT] [to be] [synonym of weather | temperature] …`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.wh_lemmas.is_empty() {
            parts.push("[WH]".to_owned());
        } else {
            parts.push(format!(
                "[{}]",
                self.wh_lemmas
                    .iter()
                    .map(|w| w.to_uppercase())
                    .collect::<Vec<_>>()
                    .join(" | ")
            ));
        }
        if self.copula {
            parts.push("[to be]".to_owned());
        }
        if let Some(v) = &self.verb_lemma {
            parts.push(format!("[to {v}]"));
        }
        if !self.focus_concepts.is_empty() {
            parts.push(format!("[synonym of {}]", self.focus_concepts.join(" | ")));
        } else if !self.focus_literals.is_empty() {
            parts.push(format!("[{}]", self.focus_literals.join(" | ")));
        }
        parts.push("…".to_owned());
        parts.join(" ")
    }
}

/// The stock pattern bank covering the 20-class taxonomy.
pub fn default_patterns() -> Vec<QuestionPattern> {
    vec![
        // Temporal foci outrank generic semantic mapping.
        QuestionPattern::new("wh-year", AnswerType::TemporalYear)
            .wh(&["what", "which"])
            .focus_word(&["year"])
            .with_priority(30),
        QuestionPattern::new("wh-month", AnswerType::TemporalMonth)
            .wh(&["what", "which"])
            .focus_word(&["month"])
            .with_priority(30),
        QuestionPattern::new("wh-date", AnswerType::TemporalDate)
            .wh(&["what", "which"])
            .focus_word(&["date", "day"])
            .with_priority(30),
        // Numeric foci.
        QuestionPattern::new("wh-percentage", AnswerType::NumericalPercentage)
            .wh(&["what", "which"])
            .focus_of(&["percentage"])
            .with_priority(25),
        QuestionPattern::new("wh-price", AnswerType::NumericalEconomic)
            .wh(&["what", "which", "how"])
            .focus_of(&["price", "money", "fare"])
            .with_priority(25),
        QuestionPattern::new("wh-age", AnswerType::NumericalAge)
            .wh(&["what", "how"])
            .focus_word(&["age", "old"])
            .with_priority(25),
        QuestionPattern::new("wh-period", AnswerType::NumericalPeriod)
            .wh(&["what", "how"])
            .focus_of(&["time period"])
            .focus_word(&["period", "duration", "long"])
            .with_priority(24),
        QuestionPattern::new("wh-measure", AnswerType::NumericalMeasure)
            .wh(&["what", "which"])
            .focus_of(&["measure", "degree", "distance"])
            .with_priority(22),
        // Semantic foci via the ontology.
        QuestionPattern::new("wh-profession", AnswerType::Profession)
            .wh(&["what", "which"])
            .focus_of(&["profession"])
            .with_priority(21),
        QuestionPattern::new("wh-capital", AnswerType::PlaceCapital)
            .wh(&["what", "which"])
            .focus_of(&["capital"])
            .with_priority(21),
        QuestionPattern::new("wh-city", AnswerType::PlaceCity)
            .wh(&["what", "which"])
            .focus_of(&["city"])
            .with_priority(20),
        QuestionPattern::new("wh-country", AnswerType::PlaceCountry)
            .wh(&["what", "which"])
            .focus_of(&["country"])
            .with_priority(20),
        QuestionPattern::new("wh-place", AnswerType::Place)
            .wh(&["what", "which"])
            .focus_of(&["location", "airport"])
            .with_priority(18),
        QuestionPattern::new("wh-person", AnswerType::Person)
            .wh(&["what", "which"])
            .focus_of(&["person"])
            .with_priority(18),
        QuestionPattern::new("wh-group", AnswerType::Group)
            .wh(&["what", "which"])
            .focus_of(&["group", "organization"])
            .with_priority(18),
        QuestionPattern::new("wh-event", AnswerType::Event)
            .wh(&["what", "which"])
            .focus_of(&["event"])
            .with_priority(18),
        QuestionPattern::new("wh-abbreviation", AnswerType::Abbreviation)
            .wh(&["what", "which"])
            .focus_of(&["abbreviation"])
            .with_priority(18),
        // "What does JFK stand for?" — answered from the ontology's
        // synonym sets rather than the corpus.
        QuestionPattern::new("stand-for", AnswerType::Abbreviation)
            .wh(&["what"])
            .with_verb("stand")
            .with_priority(26),
        // "What was the profession of La Guardia?"
        QuestionPattern::new("wh-profession-of", AnswerType::Profession)
            .wh(&["what", "which", "who"])
            .focus_of(&["profession"])
            .with_priority(26),
        // Bare interrogatives.
        QuestionPattern::new("who", AnswerType::Person)
            .wh(&["who", "whom"])
            .with_priority(15),
        QuestionPattern::new("when", AnswerType::TemporalDate)
            .wh(&["when"])
            .with_priority(15),
        QuestionPattern::new("where", AnswerType::Place)
            .wh(&["where"])
            .with_priority(15),
        QuestionPattern::new("how-many", AnswerType::NumericalQuantity)
            .wh(&["how"])
            .with_priority(10),
        // Concrete objects ("Which star…", "What instrument…").
        QuestionPattern::new("wh-object", AnswerType::Object)
            .wh(&["what", "which"])
            .focus_of(&["object", "artifact"])
            .with_priority(8),
        // Definition: "What is X?" with a proper-noun/unknown focus.
        QuestionPattern::new("definition", AnswerType::Definition)
            .wh(&["what"])
            .with_copula()
            .with_priority(2),
        // Last resort.
        QuestionPattern::new("fallback-object", AnswerType::Object).with_priority(-10),
    ]
}

/// The Step-4 tuned pattern of the paper's experiment:
/// "[WHAT] [to be] [synonym of weather | temperature] …" →
/// `Number + [ºC | F]`.
pub fn temperature_pattern() -> QuestionPattern {
    QuestionPattern::new("weather-temperature", AnswerType::NumericalTemperature)
        .wh(&["what", "how"])
        .with_copula()
        .focus_of(&["weather", "temperature"])
        .with_priority(40)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ontology::upper_ontology;

    #[test]
    fn focus_matching_uses_synonyms_and_hyponyms() {
        let onto = upper_ontology();
        let p = temperature_pattern();
        assert!(p.focus_matches(Some("weather"), &onto));
        assert!(p.focus_matches(Some("temperature"), &onto));
        // "weather condition" is a synonym label of the weather synset.
        assert!(p.focus_matches(Some("weather condition"), &onto));
        assert!(!p.focus_matches(Some("price"), &onto));
        assert!(!p.focus_matches(None, &onto));
    }

    #[test]
    fn hyponym_focus_matches_country_pattern() {
        let onto = upper_ontology();
        let country = default_patterns()
            .into_iter()
            .find(|p| p.name == "wh-country")
            .unwrap();
        assert!(country.focus_matches(Some("country"), &onto));
        assert!(country.focus_matches(Some("nation"), &onto));
        assert!(!country.focus_matches(Some("city"), &onto));
    }

    #[test]
    fn wh_matching() {
        let p = temperature_pattern();
        assert!(p.wh_matches(Some("what")));
        assert!(!p.wh_matches(Some("who")));
        assert!(!p.wh_matches(None));
        let any = QuestionPattern::new("x", AnswerType::Object);
        assert!(any.wh_matches(Some("whatever")));
    }

    #[test]
    fn describe_matches_paper_style() {
        assert_eq!(
            temperature_pattern().describe(),
            "[WHAT | HOW] [to be] [synonym of weather | temperature] …"
        );
    }

    #[test]
    fn default_bank_covers_all_stock_types() {
        let bank = default_patterns();
        let covered: std::collections::HashSet<AnswerType> =
            bank.iter().map(|p| p.answer_type).collect();
        for t in [
            AnswerType::Person,
            AnswerType::PlaceCity,
            AnswerType::PlaceCountry,
            AnswerType::TemporalDate,
            AnswerType::NumericalQuantity,
            AnswerType::Definition,
            AnswerType::Object,
        ] {
            assert!(covered.contains(&t), "missing pattern for {t}");
        }
        // The temperature type is NOT in the default bank (it is tuned in).
        assert!(!covered.contains(&AnswerType::NumericalTemperature));
    }

    #[test]
    fn priorities_put_tuned_pattern_first() {
        let mut bank = default_patterns();
        bank.push(temperature_pattern());
        bank.sort_by_key(|p| -p.priority);
        assert_eq!(bank[0].name, "weather-temperature");
    }
}
