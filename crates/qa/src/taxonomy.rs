//! The expected-answer-type taxonomy.
//!
//! "AliQAn's taxonomy consists of the following categories: person,
//! profession, group, object, place city, place country, place capital,
//! place, abbreviation, event, numerical economic, numerical age,
//! numerical measure, numerical period, numerical percentage, numerical
//! quantity, temporal year, temporal month, temporal date and definition."
//!
//! [`AnswerType::NumericalTemperature`] is not in the stock list: it is the
//! type the paper's Step 4 *tunes in* for the weather queries ("the answer
//! type implies that the AliQAn system is searching for a number lexical
//! type followed by the unit-measure (ºC or F)").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Expected answer types (the paper's 20 stock classes + the tuned
/// temperature class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnswerType {
    /// A person's proper name.
    Person,
    /// A profession or occupation.
    Profession,
    /// A group/organization name.
    Group,
    /// A concrete object.
    Object,
    /// A city name.
    PlaceCity,
    /// A country name.
    PlaceCountry,
    /// A capital-city name.
    PlaceCapital,
    /// Any other location.
    Place,
    /// An abbreviation/acronym expansion.
    Abbreviation,
    /// A named event.
    Event,
    /// A money amount.
    NumericalEconomic,
    /// An age in years.
    NumericalAge,
    /// A measured magnitude with a unit.
    NumericalMeasure,
    /// A duration.
    NumericalPeriod,
    /// A percentage.
    NumericalPercentage,
    /// A bare count/quantity.
    NumericalQuantity,
    /// A year.
    TemporalYear,
    /// A month (possibly with year).
    TemporalMonth,
    /// A full calendar date.
    TemporalDate,
    /// A definition ("X is …").
    Definition,
    /// Tuned (Step 4): a temperature — number + ºC/F unit.
    NumericalTemperature,
}

impl AnswerType {
    /// The paper's 20 stock classes (without the tuned temperature type).
    pub const STOCK: [AnswerType; 20] = [
        AnswerType::Person,
        AnswerType::Profession,
        AnswerType::Group,
        AnswerType::Object,
        AnswerType::PlaceCity,
        AnswerType::PlaceCountry,
        AnswerType::PlaceCapital,
        AnswerType::Place,
        AnswerType::Abbreviation,
        AnswerType::Event,
        AnswerType::NumericalEconomic,
        AnswerType::NumericalAge,
        AnswerType::NumericalMeasure,
        AnswerType::NumericalPeriod,
        AnswerType::NumericalPercentage,
        AnswerType::NumericalQuantity,
        AnswerType::TemporalYear,
        AnswerType::TemporalMonth,
        AnswerType::TemporalDate,
        AnswerType::Definition,
    ];

    /// Human-readable label ("place city", as the paper spells them).
    pub fn label(self) -> &'static str {
        match self {
            AnswerType::Person => "person",
            AnswerType::Profession => "profession",
            AnswerType::Group => "group",
            AnswerType::Object => "object",
            AnswerType::PlaceCity => "place city",
            AnswerType::PlaceCountry => "place country",
            AnswerType::PlaceCapital => "place capital",
            AnswerType::Place => "place",
            AnswerType::Abbreviation => "abbreviation",
            AnswerType::Event => "event",
            AnswerType::NumericalEconomic => "numerical economic",
            AnswerType::NumericalAge => "numerical age",
            AnswerType::NumericalMeasure => "numerical measure",
            AnswerType::NumericalPeriod => "numerical period",
            AnswerType::NumericalPercentage => "numerical percentage",
            AnswerType::NumericalQuantity => "numerical quantity",
            AnswerType::TemporalYear => "temporal year",
            AnswerType::TemporalMonth => "temporal month",
            AnswerType::TemporalDate => "temporal date",
            AnswerType::Definition => "definition",
            AnswerType::NumericalTemperature => "numerical temperature",
        }
    }

    /// What the extractor must find, phrased as in the paper's Table 1
    /// ("Number + [ºC | F]").
    pub fn expectation(self) -> &'static str {
        match self {
            AnswerType::Person | AnswerType::Group | AnswerType::Object => "Proper noun",
            AnswerType::Profession => "Common noun (occupation)",
            AnswerType::PlaceCity
            | AnswerType::PlaceCountry
            | AnswerType::PlaceCapital
            | AnswerType::Place => "Proper noun (location)",
            AnswerType::Abbreviation => "Acronym or expansion",
            AnswerType::Event => "Proper noun (event)",
            AnswerType::NumericalEconomic => "Number + currency",
            AnswerType::NumericalAge => "Number (years of age)",
            AnswerType::NumericalMeasure => "Number + unit",
            AnswerType::NumericalPeriod => "Number + time unit",
            AnswerType::NumericalPercentage => "Number + %",
            AnswerType::NumericalQuantity => "Number",
            AnswerType::TemporalYear => "Year",
            AnswerType::TemporalMonth => "Month",
            AnswerType::TemporalDate => "Date",
            AnswerType::Definition => "Defining phrase",
            AnswerType::NumericalTemperature => "Number + [ºC | F]",
        }
    }

    /// Whether candidates of this type are numeric entities.
    pub fn is_numerical(self) -> bool {
        matches!(
            self,
            AnswerType::NumericalEconomic
                | AnswerType::NumericalAge
                | AnswerType::NumericalMeasure
                | AnswerType::NumericalPeriod
                | AnswerType::NumericalPercentage
                | AnswerType::NumericalQuantity
                | AnswerType::NumericalTemperature
        )
    }

    /// Whether candidates of this type are temporal.
    pub fn is_temporal(self) -> bool {
        matches!(
            self,
            AnswerType::TemporalYear | AnswerType::TemporalMonth | AnswerType::TemporalDate
        )
    }
}

impl fmt::Display for AnswerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_taxonomy_has_twenty_classes() {
        assert_eq!(AnswerType::STOCK.len(), 20);
        assert!(!AnswerType::STOCK.contains(&AnswerType::NumericalTemperature));
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(AnswerType::PlaceCity.label(), "place city");
        assert_eq!(AnswerType::NumericalEconomic.label(), "numerical economic");
        assert_eq!(AnswerType::TemporalDate.label(), "temporal date");
    }

    #[test]
    fn temperature_expectation_matches_table_1() {
        assert_eq!(
            AnswerType::NumericalTemperature.expectation(),
            "Number + [ºC | F]"
        );
    }

    #[test]
    fn classifiers() {
        assert!(AnswerType::NumericalTemperature.is_numerical());
        assert!(AnswerType::TemporalDate.is_temporal());
        assert!(!AnswerType::Person.is_numerical());
        assert!(!AnswerType::Person.is_temporal());
    }
}
