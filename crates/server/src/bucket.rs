//! Per-client token-bucket rate limiting.
//!
//! Each connection owns one bucket: `rate_burst` tokens of headroom,
//! refilled continuously at `rate_per_sec`. The clock is passed in
//! explicitly so the refill arithmetic is deterministic under test.

use std::time::{Duration, Instant};

/// A token bucket: take one token per request, refill over time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    burst: f64,
    rate_per_sec: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(burst: u32, rate_per_sec: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            burst: f64::from(burst),
            rate_per_sec,
            tokens: f64::from(burst),
            last_refill: now,
        }
    }

    /// Tokens currently available (after refilling up to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Takes one token, or reports how long until one is available.
    pub fn try_take(&mut self, now: Instant) -> Result<(), Duration> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(deficit / self.rate_per_sec))
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_honoured_then_the_bucket_runs_dry() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(3, 10.0, t0);
        for _ in 0..3 {
            assert_eq!(bucket.try_take(t0), Ok(()));
        }
        let wait = bucket.try_take(t0).unwrap_err();
        // One token at 10/s arrives in 100ms.
        assert!(wait > Duration::from_millis(90) && wait <= Duration::from_millis(100));
    }

    #[test]
    fn refill_restores_tokens_at_the_configured_rate() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2, 10.0, t0);
        assert_eq!(bucket.try_take(t0), Ok(()));
        assert_eq!(bucket.try_take(t0), Ok(()));
        assert!(bucket.try_take(t0).is_err());
        // 150ms later, 1.5 tokens have returned: one take succeeds,
        // the next must wait for the remaining half token.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(bucket.try_take(t1), Ok(()));
        let wait = bucket.try_take(t1).unwrap_err();
        assert!(wait > Duration::from_millis(40) && wait <= Duration::from_millis(50));
    }

    #[test]
    fn refill_never_exceeds_the_burst() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2, 1000.0, t0);
        let t1 = t0 + Duration::from_secs(60);
        assert_eq!(bucket.available(t1), 2.0);
    }
}
