//! A small blocking client for the JSON-lines protocol.
//!
//! [`QaClient`] is what the REPL's `:serve` smoke check, the
//! `exp_service` load driver and the integration tests speak through.
//! It supports both call-and-wait ([`QaClient::request`]) and
//! pipelined use ([`QaClient::send`] / [`QaClient::recv`]), plus a
//! busy-honouring retry helper that sleeps the server's own
//! `retry_after_ms` hint.

use crate::protocol::{ProtocolError, Request, Response};
use dwqa_core::Error;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a [`crate::QaServer`].
pub struct QaClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl QaClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<QaClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(QaClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// The next correlation id (auto-incremented by the helpers).
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Writes one request line without waiting for the response.
    pub fn send(&mut self, request: &Request) -> Result<(), Error> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| ProtocolError::Malformed(e.to_string()))
            .map_err(Error::from)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads one response line. `Err(Error::Io)` on a closed socket,
    /// `Err(Error::Protocol)` on an unparseable line.
    pub fn recv(&mut self) -> Result<Response, Error> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = serde_json::from_str(line.trim_end())
            .map_err(|e| ProtocolError::Malformed(e.to_string()))?;
        Ok(response)
    }

    /// Sends a request and waits for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, Error> {
        self.send(request)?;
        self.recv()
    }

    /// Asks one question.
    pub fn ask(&mut self, question: &str) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::ask(id, question))
    }

    /// Asks one question with a per-question deadline.
    pub fn ask_with_deadline(
        &mut self,
        question: &str,
        deadline_ms: u64,
    ) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::ask(id, question).with_deadline_ms(deadline_ms))
    }

    /// Asks one question, honouring `busy` backpressure: sleeps the
    /// server's retry-after hint and retries, up to `max_retries`
    /// times. The last response is returned even if still busy.
    pub fn ask_with_retry(
        &mut self,
        question: &str,
        max_retries: usize,
    ) -> Result<Response, Error> {
        let mut response = self.ask(question)?;
        for _ in 0..max_retries {
            if !response.is_busy() {
                break;
            }
            let wait = response.retry_after_ms.unwrap_or(10);
            std::thread::sleep(Duration::from_millis(wait.min(250)));
            response = self.ask(question)?;
        }
        Ok(response)
    }

    /// Answers a batch of questions.
    pub fn batch(&mut self, questions: &[String]) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::batch(id, questions))
    }

    /// Answers the questions and feeds the results into the warehouse.
    pub fn feedback(&mut self, questions: &[String]) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::feedback(id, questions))
    }

    /// Answers the questions and feeds them, honouring `busy`
    /// backpressure (shed, rate-limit, or replication lag): sleeps the
    /// server's retry-after hint and retries, up to `max_retries`
    /// times. Feed deduplication makes retries of an already-committed
    /// transaction no-ops, so this is the safe way to drive a
    /// replicating primary to an acknowledged commit.
    pub fn feedback_with_retry(
        &mut self,
        questions: &[String],
        max_retries: usize,
    ) -> Result<Response, Error> {
        let mut response = self.feedback(questions)?;
        for _ in 0..max_retries {
            if !response.is_busy() {
                break;
            }
            let wait = response.retry_after_ms.unwrap_or(10);
            std::thread::sleep(Duration::from_millis(wait.min(250)));
            response = self.feedback(questions)?;
        }
        Ok(response)
    }

    /// Fetches service counters.
    pub fn stats(&mut self) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::stats(id))
    }

    /// Fetches the replication role, position, and peer status.
    pub fn replicas(&mut self) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::replicas(id))
    }

    /// Asks a standby to promote itself to primary.
    pub fn promote(&mut self) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::promote(id))
    }

    /// Asks the server to drain gracefully.
    pub fn drain(&mut self) -> Result<Response, Error> {
        let id = self.next_id();
        self.request(&Request::drain(id))
    }
}
