//! Service tunables, built through a validating builder.
//!
//! Follows the workspace builder convention (DESIGN.md §11): setters
//! take raw values, [`ServerConfigBuilder::build`] validates every
//! range and returns `Result<ServerConfig, ConfigError>` naming the
//! offending field. Nothing is silently clamped.

use dwqa_common::ConfigError;
use std::time::Duration;

/// Tunables for [`crate::QaServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads executing admitted work items (also the engine's
    /// worker-pool width for feedback batches).
    pub workers: usize,
    /// Maximum admitted-but-not-running work items across all clients.
    /// Admissions beyond this are shed with a `busy` response.
    pub queue_capacity: usize,
    /// Per-client token-bucket burst: requests a client may issue
    /// back-to-back before the refill rate applies.
    pub rate_burst: u32,
    /// Per-client token refill rate, tokens (requests) per second.
    pub rate_per_sec: f64,
    /// Default per-question wall-clock budget applied when a request
    /// carries no `deadline_ms` of its own. `None` means unbounded.
    pub default_deadline: Option<Duration>,
    /// Base retry-after hint attached to shed responses; scaled by how
    /// many queue slots each worker would have to clear first.
    pub shed_retry_after: Duration,
    /// How long a drain waits for admitted work before abandoning the
    /// remainder and shutting the worker pool down.
    pub drain_grace: Duration,
    /// Maximum questions accepted in one `batch` / `feedback` request.
    pub max_batch: usize,
    /// Answer-cache capacity for the service's engine (questions).
    pub cache_capacity: usize,
    /// Record per-request and per-question spans into the engine's
    /// flight recorder.
    pub tracing: bool,
    /// Socket read deadline per request line: a connection idle (or
    /// dribbling bytes slower than a full line per window) for this
    /// long is disconnected, so hung clients cannot pin connection
    /// threads or stall a drain. `None` disables the deadline.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            rate_burst: 32,
            rate_per_sec: 64.0,
            default_deadline: None,
            shed_retry_after: Duration::from_millis(25),
            drain_grace: Duration::from_secs(10),
            max_batch: 64,
            cache_capacity: dwqa_engine::DEFAULT_CACHE_CAPACITY,
            tracing: false,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ServerConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Validates every knob, naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::new("workers", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "must be at least 1"));
        }
        if self.rate_burst == 0 {
            return Err(ConfigError::new("rate_burst", "must be at least 1"));
        }
        if !self.rate_per_sec.is_finite() || self.rate_per_sec <= 0.0 {
            return Err(ConfigError::new(
                "rate_per_sec",
                "must be finite and positive",
            ));
        }
        if self.shed_retry_after.is_zero() {
            return Err(ConfigError::new("shed_retry_after", "must be non-zero"));
        }
        if self.drain_grace.is_zero() {
            return Err(ConfigError::new("drain_grace", "must be non-zero"));
        }
        if self.max_batch == 0 {
            return Err(ConfigError::new("max_batch", "must be at least 1"));
        }
        if self.read_timeout.is_some_and(|t| t.is_zero()) {
            return Err(ConfigError::new(
                "read_timeout",
                "must be non-zero (use None to disable)",
            ));
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads executing admitted work.
    pub fn workers(mut self, workers: usize) -> ServerConfigBuilder {
        self.config.workers = workers;
        self
    }

    /// Maximum queued (admitted, not yet running) work items.
    pub fn queue_capacity(mut self, capacity: usize) -> ServerConfigBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// Per-client token-bucket burst size.
    pub fn rate_burst(mut self, burst: u32) -> ServerConfigBuilder {
        self.config.rate_burst = burst;
        self
    }

    /// Per-client token refill rate (requests per second).
    pub fn rate_per_sec(mut self, rate: f64) -> ServerConfigBuilder {
        self.config.rate_per_sec = rate;
        self
    }

    /// Default per-question deadline for requests that set none.
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> ServerConfigBuilder {
        self.config.default_deadline = deadline;
        self
    }

    /// Base retry-after hint for shed responses.
    pub fn shed_retry_after(mut self, hint: Duration) -> ServerConfigBuilder {
        self.config.shed_retry_after = hint;
        self
    }

    /// Drain grace period for in-flight work.
    pub fn drain_grace(mut self, grace: Duration) -> ServerConfigBuilder {
        self.config.drain_grace = grace;
        self
    }

    /// Maximum questions per `batch` / `feedback` request.
    pub fn max_batch(mut self, max: usize) -> ServerConfigBuilder {
        self.config.max_batch = max;
        self
    }

    /// Answer-cache capacity (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> ServerConfigBuilder {
        self.config.cache_capacity = capacity;
        self
    }

    /// Record request/question spans into the flight recorder.
    pub fn tracing(mut self, on: bool) -> ServerConfigBuilder {
        self.config.tracing = on;
        self
    }

    /// Socket read deadline per request line (`None` disables).
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> ServerConfigBuilder {
        self.config.read_timeout = timeout;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServerConfig::builder().build().is_ok());
    }

    #[test]
    fn degenerate_knobs_are_rejected_at_build_naming_the_field() {
        let cases: [(&str, ServerConfigBuilder); 7] = [
            ("workers", ServerConfig::builder().workers(0)),
            ("queue_capacity", ServerConfig::builder().queue_capacity(0)),
            ("rate_burst", ServerConfig::builder().rate_burst(0)),
            (
                "rate_per_sec",
                ServerConfig::builder().rate_per_sec(f64::NAN),
            ),
            (
                "drain_grace",
                ServerConfig::builder().drain_grace(Duration::ZERO),
            ),
            ("max_batch", ServerConfig::builder().max_batch(0)),
            (
                "read_timeout",
                ServerConfig::builder().read_timeout(Some(Duration::ZERO)),
            ),
        ];
        for (field, builder) in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.field, field, "{err}");
        }
    }

    #[test]
    fn zero_cache_capacity_is_legal() {
        let cfg = ServerConfig::builder().cache_capacity(0).build().unwrap();
        assert_eq!(cfg.cache_capacity, 0);
    }
}
