//! `dwqa-server` — the integrated QA system as a long-lived,
//! multi-client network service.
//!
//! The paper's model ends at a single analyst feeding answers back into
//! the warehouse; this crate turns that into a shared service. A
//! [`QaServer`] owns an [`dwqa_engine::QaEngine`] (concurrent read path,
//! answer cache) plus the [`dwqa_core::IntegrationPipeline`] write path,
//! and speaks a JSON-lines protocol over TCP:
//!
//! * **`ask` / `batch`** — answer questions through the engine's read
//!   path (cached, deadline-bounded, fault-hardened);
//! * **`feedback`** — answer *and* feed the results into the warehouse
//!   through the serialized transactional write path;
//! * **`stats`** — service counters, cache and outcome taxonomy;
//! * **`replicas`** — replication role, position, and peer status;
//! * **`promote`** — promote a warm standby to primary;
//! * **`drain`** — begin graceful shutdown.
//!
//! The service degrades explicitly instead of collapsing under load:
//!
//! * a **bounded admission queue** — when full, requests are shed with a
//!   `busy` response carrying a retry-after hint, never silently queued
//!   without bound;
//! * **per-client token buckets** — one client cannot starve the rest;
//! * **fair round-robin dequeue** across clients;
//! * **deadline propagation** — a request's `deadline_ms` rides into the
//!   engine as the per-question wall-clock budget;
//! * **graceful drain** — new work is rejected, every admitted question
//!   completes (feedback transactions commit or roll back, never
//!   half-apply), then sockets close and [`QaServer::join`] hands the
//!   warehouse back.
//!
//! Every admission decision (admitted / shed / rate-limited / drained)
//! is a `dwqa-obs` counter, and each request runs under a `request`
//! span when tracing is enabled.
//!
//! For high availability, a primary [`QaServer`] can ship its durable
//! WAL frames to warm standbys that serve reads and take over —
//! losslessly, under sync replication — when the primary dies: see
//! [`repl`] and DESIGN.md §15.
//!
//! ```no_run
//! use dwqa_server::{QaClient, QaServer, ServerConfig};
//!
//! let pipeline = dwqa_bench::build_fixture(Default::default()).pipeline;
//! let cfg = ServerConfig::builder().workers(2).build().unwrap();
//! let server = QaServer::start(pipeline, cfg, "127.0.0.1:0").unwrap();
//! let mut client = QaClient::connect(server.local_addr()).unwrap();
//! let response = client.ask("what is the temperature in Madrid?").unwrap();
//! client.drain().unwrap();
//! let _warehouse = server.join(); // Some(pipeline): nothing was lost
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bucket;
pub mod client;
pub mod config;
pub mod protocol;
pub mod queue;
pub mod repl;
pub mod server;

pub use bucket::TokenBucket;
pub use client::QaClient;
pub use config::{ServerConfig, ServerConfigBuilder};
pub use protocol::{
    BusyReason, Command, PeerStatus, ProtocolError, ReplicasReport, Request, Response,
    ServiceStats, Status,
};
pub use repl::{ReplicationConfig, ReplicationConfigBuilder, ReplicationMode, Role};
pub use server::QaServer;
