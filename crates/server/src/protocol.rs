//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out, correlated by client-chosen `id`.
//!
//! Requests are a flat struct with optional fields so the vendored
//! serde derive can parse any verb; [`Request::validate`] narrows a
//! parsed request into a typed [`Command`] or a [`ProtocolError`]. The
//! five verbs:
//!
//! | kind       | payload                      | effect                          |
//! |------------|------------------------------|---------------------------------|
//! | `ask`      | `question`, `deadline_ms?`   | answer via the read path        |
//! | `batch`    | `questions`, `deadline_ms?`  | answer several questions        |
//! | `feedback` | `questions`                  | answer *and* feed the warehouse |
//! | `stats`    | —                            | service counters                |
//! | `drain`    | —                            | begin graceful shutdown         |
//! | `replicas` | —                            | replication role/peer report    |
//! | `promote`  | —                            | promote this standby to primary |
//!
//! Responses carry a [`Status`]: `Ok` (work done), `Busy` (explicit
//! backpressure with a [`BusyReason`] and a `retry_after_ms` hint), or
//! `Error` (malformed/invalid request, reported — never a dropped
//! connection).

use dwqa_qa::Answer;

/// Protocol revision spoken by [`crate::QaServer`] and [`crate::QaClient`].
pub const PROTOCOL_VERSION: u32 = 1;

/// One request line. `id` is chosen by the client and echoed back on
/// the matching response; fields beyond `kind` are verb-specific.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Verb: `ask`, `batch`, `feedback`, `stats` or `drain`.
    pub kind: String,
    /// The question (`ask`).
    pub question: Option<String>,
    /// The questions (`batch`, `feedback`).
    pub questions: Option<Vec<String>>,
    /// Optional per-question wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl Request {
    fn bare(id: u64, kind: &str) -> Request {
        Request {
            id,
            kind: kind.to_owned(),
            question: None,
            questions: None,
            deadline_ms: None,
        }
    }

    /// An `ask` request.
    pub fn ask(id: u64, question: &str) -> Request {
        Request {
            question: Some(question.to_owned()),
            ..Request::bare(id, "ask")
        }
    }

    /// A `batch` request.
    pub fn batch(id: u64, questions: &[String]) -> Request {
        Request {
            questions: Some(questions.to_vec()),
            ..Request::bare(id, "batch")
        }
    }

    /// A `feedback` request: answer the questions and feed the results
    /// into the warehouse in one transaction.
    pub fn feedback(id: u64, questions: &[String]) -> Request {
        Request {
            questions: Some(questions.to_vec()),
            ..Request::bare(id, "feedback")
        }
    }

    /// A `stats` request.
    pub fn stats(id: u64) -> Request {
        Request::bare(id, "stats")
    }

    /// A `drain` request.
    pub fn drain(id: u64) -> Request {
        Request::bare(id, "drain")
    }

    /// A `replicas` request: report the server's replication role,
    /// position and peer status.
    pub fn replicas(id: u64) -> Request {
        Request::bare(id, "replicas")
    }

    /// A `promote` request: promote this standby to primary (fencing
    /// the old primary's generation out).
    pub fn promote(id: u64) -> Request {
        Request::bare(id, "promote")
    }

    /// Attaches a per-question deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Request {
        self.deadline_ms = Some(ms);
        self
    }

    /// Narrows the parsed request into a typed [`Command`], enforcing
    /// verb-specific required fields and the batch size limit.
    pub fn validate(&self, max_batch: usize) -> Result<Command, ProtocolError> {
        match self.kind.as_str() {
            "ask" => {
                let question = self.question.clone().ok_or(ProtocolError::MissingField {
                    kind: "ask",
                    field: "question",
                })?;
                if question.trim().is_empty() {
                    return Err(ProtocolError::EmptyQuestion);
                }
                Ok(Command::Ask {
                    question,
                    deadline_ms: self.deadline_ms,
                })
            }
            "batch" | "feedback" => {
                let questions = self.questions.clone().ok_or(ProtocolError::MissingField {
                    kind: if self.kind == "batch" {
                        "batch"
                    } else {
                        "feedback"
                    },
                    field: "questions",
                })?;
                if questions.is_empty() {
                    return Err(ProtocolError::EmptyBatch);
                }
                if questions.len() > max_batch {
                    return Err(ProtocolError::Oversized {
                        limit: max_batch,
                        got: questions.len(),
                    });
                }
                if self.kind == "batch" {
                    Ok(Command::Batch {
                        questions,
                        deadline_ms: self.deadline_ms,
                    })
                } else {
                    Ok(Command::Feedback { questions })
                }
            }
            "stats" => Ok(Command::Stats),
            "drain" => Ok(Command::Drain),
            "replicas" => Ok(Command::Replicas),
            "promote" => Ok(Command::Promote),
            other => Err(ProtocolError::UnknownKind(other.to_owned())),
        }
    }
}

/// A validated request: the typed form the server executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Answer one question.
    Ask {
        /// The question text.
        question: String,
        /// Optional per-question deadline (milliseconds).
        deadline_ms: Option<u64>,
    },
    /// Answer several questions.
    Batch {
        /// The question texts.
        questions: Vec<String>,
        /// Optional per-question deadline (milliseconds).
        deadline_ms: Option<u64>,
    },
    /// Answer the questions and feed the answers into the warehouse.
    Feedback {
        /// The question texts.
        questions: Vec<String>,
    },
    /// Report service counters.
    Stats,
    /// Begin graceful shutdown.
    Drain,
    /// Report replication role, position and peers.
    Replicas,
    /// Promote this standby to primary.
    Promote,
}

/// How a request was disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Status {
    /// The request was executed; payload fields are populated.
    Ok,
    /// Explicit backpressure: not executed, retry after the hint.
    Busy,
    /// The request was malformed or invalid; `detail` explains.
    Error,
}

/// Why a request was refused with [`Status::Busy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BusyReason {
    /// The admission queue was at capacity; the request was shed.
    Shed,
    /// The client's token bucket was empty.
    RateLimited,
    /// The server is draining and admits no new work.
    Draining,
    /// This server is a read-only standby; `redirect` names the
    /// primary to send `feedback` to.
    NotPrimary,
    /// Sync replication could not confirm the quorum in time (the
    /// transaction is committed locally but **not acknowledged**; a
    /// retry deduplicates and re-awaits the quorum).
    ReplicationLag,
}

/// One response line, correlated to its request by `id`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request id was
    /// unparseable).
    pub id: u64,
    /// Disposition of the request.
    pub status: Status,
    /// Why the request was refused (`Busy` only).
    pub reason: Option<BusyReason>,
    /// Suggested wait before retrying, milliseconds (`Busy` only).
    pub retry_after_ms: Option<u64>,
    /// Per-question answers, in request order (`ask` has one entry).
    pub answers: Option<Vec<Vec<Answer>>>,
    /// Per-question outcome labels (`ok`, `degraded`, `timed-out`, …),
    /// aligned with `answers`.
    pub outcomes: Option<Vec<String>>,
    /// Human-readable detail: degradation notes or the error message.
    pub detail: Option<String>,
    /// Rows loaded into the warehouse (`feedback` only).
    pub loaded: Option<u64>,
    /// Duplicate tuples skipped by the feed (`feedback` only).
    pub duplicates: Option<u64>,
    /// Service counters (`stats` only).
    pub stats: Option<ServiceStats>,
    /// Where to send writes instead (`Busy`/`NotPrimary` only): the
    /// primary's advertised client address, when known. (The vendored
    /// deserializer treats a missing key as `None`, so older peers
    /// parse fine.)
    pub redirect: Option<String>,
    /// Replication role/peer report (`replicas` only).
    pub replicas: Option<ReplicasReport>,
}

impl Response {
    fn bare(id: u64, status: Status) -> Response {
        Response {
            id,
            status,
            reason: None,
            retry_after_ms: None,
            answers: None,
            outcomes: None,
            detail: None,
            loaded: None,
            duplicates: None,
            stats: None,
            redirect: None,
            replicas: None,
        }
    }

    /// An `Ok` response carrying per-question answers and outcomes.
    pub fn answers(
        id: u64,
        answers: Vec<Vec<Answer>>,
        outcomes: Vec<String>,
        detail: Option<String>,
    ) -> Response {
        Response {
            answers: Some(answers),
            outcomes: Some(outcomes),
            detail,
            ..Response::bare(id, Status::Ok)
        }
    }

    /// An `Ok` response for a feedback transaction.
    pub fn fed(
        id: u64,
        answers: Vec<Vec<Answer>>,
        outcomes: Vec<String>,
        loaded: u64,
        duplicates: u64,
    ) -> Response {
        Response {
            answers: Some(answers),
            outcomes: Some(outcomes),
            loaded: Some(loaded),
            duplicates: Some(duplicates),
            ..Response::bare(id, Status::Ok)
        }
    }

    /// An `Ok` response carrying service counters.
    pub fn stats(id: u64, stats: ServiceStats) -> Response {
        Response {
            stats: Some(stats),
            ..Response::bare(id, Status::Ok)
        }
    }

    /// A bare `Ok` acknowledgement (drain).
    pub fn ack(id: u64) -> Response {
        Response::bare(id, Status::Ok)
    }

    /// A `Busy` refusal with an optional retry-after hint.
    pub fn busy(id: u64, reason: BusyReason, retry_after_ms: Option<u64>) -> Response {
        Response {
            reason: Some(reason),
            retry_after_ms,
            ..Response::bare(id, Status::Busy)
        }
    }

    /// A `Busy`/`NotPrimary` refusal from a read-only standby, with
    /// the primary's advertised address when the standby knows it.
    pub fn not_primary(id: u64, redirect: Option<String>) -> Response {
        Response {
            reason: Some(BusyReason::NotPrimary),
            redirect,
            ..Response::bare(id, Status::Busy)
        }
    }

    /// An `Ok` response carrying the replication report.
    pub fn replicas(id: u64, report: ReplicasReport) -> Response {
        Response {
            replicas: Some(report),
            ..Response::bare(id, Status::Ok)
        }
    }

    /// An `Error` response with a human-readable message.
    pub fn error(id: u64, detail: impl Into<String>) -> Response {
        Response {
            detail: Some(detail.into()),
            ..Response::bare(id, Status::Error)
        }
    }

    /// Whether the request was executed.
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }

    /// Whether the request was refused with backpressure.
    pub fn is_busy(&self) -> bool {
        self.status == Status::Busy
    }
}

/// Service-level counters returned by the `stats` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests received, every kind and disposition.
    pub requests: u64,
    /// Work requests admitted into the queue.
    pub admitted: u64,
    /// Work requests shed at queue capacity.
    pub shed: u64,
    /// Work requests refused by a token bucket.
    pub rate_limited: u64,
    /// Work requests refused because the server was draining.
    pub drained: u64,
    /// Admitted work items completed.
    pub completed: u64,
    /// Request lines that failed to parse or validate.
    pub protocol_errors: u64,
    /// Work items currently queued.
    pub queue_depth: u64,
    /// Connected clients.
    pub clients: u64,
    /// Questions answered by the engine.
    pub questions: u64,
    /// Answer-cache hits.
    pub cache_hits: u64,
    /// Answer-cache misses.
    pub cache_misses: u64,
    /// Entries currently held by the answer cache. Read lock-free from
    /// the cache's per-shard counters, so the `stats` verb never queues
    /// behind answering workers.
    pub cache_entries: u64,
    /// Warehouse revision visible on the read path.
    pub revision: u64,
    /// True when the pipeline has a durable feedback store attached,
    /// so `feedback` commits are WAL-logged before the `ok` response.
    pub durable: bool,
    /// WAL record appends observed by this service's feed transactions
    /// (0 when not durable).
    pub wal_appends: u64,
    /// Client connections dropped because a read timed out before a
    /// full request line arrived (slow-loris defence).
    pub disconnects_timeout: u64,
}

/// The `replicas` verb's report: this server's replication role and
/// position, plus (on a primary) per-peer shipping status.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ReplicasReport {
    /// `primary`, `standby`, or `none` (replication not configured).
    pub role: String,
    /// `sync(quorum)`, `async(budget)`, or `none`.
    pub mode: String,
    /// Highest store generation this server is at (the fencing token).
    pub generation: u64,
    /// Replication position: the primary's WAL `next_seq`, or a
    /// standby's applied-from-primary `next_seq`.
    pub next_seq: u64,
    /// Frames behind: on a standby, the primary's advertised position
    /// minus its own; on a primary, the worst connected peer's unacked
    /// span. `None` when unknown (no heartbeat yet / no peers).
    pub lag: Option<u64>,
    /// The primary's advertised client address (standby only, learned
    /// from heartbeats).
    pub primary: Option<String>,
    /// Connected/known standbys (primary only).
    pub peers: Vec<PeerStatus>,
}

/// One standby as the primary's hub sees it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PeerStatus {
    /// The peer's replication-link address.
    pub addr: String,
    /// The peer's last acknowledged applied position (`next_seq`).
    pub acked_seq: u64,
    /// Frames the peer is behind the primary's position.
    pub lag: u64,
    /// Whether the replication link to the peer is currently up.
    pub connected: bool,
}

/// Why a request line could not be turned into a [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The line was not a valid request object.
    Malformed(String),
    /// A verb-specific required field was absent.
    MissingField {
        /// The verb.
        kind: &'static str,
        /// The absent field.
        field: &'static str,
    },
    /// The `kind` field named no known verb.
    UnknownKind(String),
    /// An `ask` with a blank question.
    EmptyQuestion,
    /// A `batch`/`feedback` with no questions.
    EmptyBatch,
    /// A `batch`/`feedback` beyond the server's size limit.
    Oversized {
        /// The server's limit.
        limit: usize,
        /// The size received.
        got: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            ProtocolError::MissingField { kind, field } => {
                write!(f, "`{kind}` request is missing `{field}`")
            }
            ProtocolError::UnknownKind(kind) => write!(f, "unknown request kind `{kind}`"),
            ProtocolError::EmptyQuestion => write!(f, "`ask` request with a blank question"),
            ProtocolError::EmptyBatch => write!(f, "batch request with no questions"),
            ProtocolError::Oversized { limit, got } => {
                write!(f, "batch of {got} questions exceeds the limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for dwqa_core::Error {
    fn from(err: ProtocolError) -> dwqa_core::Error {
        dwqa_core::Error::Protocol(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) -> Request {
        let line = serde_json::to_string(req).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    fn round_trip_response(resp: &Response) -> Response {
        let line = serde_json::to_string(resp).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    #[test]
    fn every_request_kind_round_trips_through_json() {
        let qs = vec!["q one".to_owned(), "q two".to_owned()];
        for req in [
            Request::ask(1, "what is the temperature?").with_deadline_ms(250),
            Request::batch(2, &qs),
            Request::feedback(3, &qs),
            Request::stats(4),
            Request::drain(5),
            Request::replicas(6),
            Request::promote(7),
        ] {
            assert_eq!(round_trip_request(&req), req);
        }
    }

    #[test]
    fn every_response_shape_round_trips_through_json() {
        for resp in [
            Response::answers(1, vec![Vec::new()], vec!["ok".to_owned()], None),
            Response::fed(2, vec![Vec::new()], vec!["ok".to_owned()], 7, 3),
            Response::busy(3, BusyReason::Shed, Some(40)),
            Response::busy(4, BusyReason::RateLimited, Some(12)),
            Response::busy(5, BusyReason::Draining, None),
            Response::error(6, "unknown request kind `sing`"),
            Response::stats(7, ServiceStats::default()),
            Response::ack(8),
            Response::not_primary(9, Some("127.0.0.1:4040".to_owned())),
            Response::not_primary(10, None),
            Response::busy(11, BusyReason::ReplicationLag, Some(50)),
            Response::replicas(
                12,
                ReplicasReport {
                    role: "primary".to_owned(),
                    mode: "sync(1)".to_owned(),
                    generation: 3,
                    next_seq: 41,
                    lag: Some(2),
                    primary: None,
                    peers: vec![PeerStatus {
                        addr: "127.0.0.1:9100".to_owned(),
                        acked_seq: 39,
                        lag: 2,
                        connected: true,
                    }],
                },
            ),
        ] {
            assert_eq!(round_trip_response(&resp), resp);
        }
    }

    #[test]
    fn validate_narrows_each_verb_and_rejects_bad_shapes() {
        let qs = vec!["a".to_owned(), "b".to_owned()];
        assert!(matches!(
            Request::ask(1, "q").validate(8),
            Ok(Command::Ask { .. })
        ));
        assert!(matches!(
            Request::batch(1, &qs).validate(8),
            Ok(Command::Batch { .. })
        ));
        assert!(matches!(
            Request::feedback(1, &qs).validate(8),
            Ok(Command::Feedback { .. })
        ));
        assert!(matches!(Request::stats(1).validate(8), Ok(Command::Stats)));
        assert!(matches!(Request::drain(1).validate(8), Ok(Command::Drain)));
        assert!(matches!(
            Request::replicas(1).validate(8),
            Ok(Command::Replicas)
        ));
        assert!(matches!(
            Request::promote(1).validate(8),
            Ok(Command::Promote)
        ));

        assert_eq!(
            Request::bare(1, "ask").validate(8),
            Err(ProtocolError::MissingField {
                kind: "ask",
                field: "question"
            })
        );
        assert_eq!(
            Request::ask(1, "   ").validate(8),
            Err(ProtocolError::EmptyQuestion)
        );
        assert_eq!(
            Request::batch(1, &[]).validate(8),
            Err(ProtocolError::EmptyBatch)
        );
        assert_eq!(
            Request::batch(1, &qs).validate(1),
            Err(ProtocolError::Oversized { limit: 1, got: 2 })
        );
        assert_eq!(
            Request::bare(1, "sing").validate(8),
            Err(ProtocolError::UnknownKind("sing".to_owned()))
        );
    }

    #[test]
    fn deadline_rides_the_wire_into_the_command() {
        let req = round_trip_request(&Request::ask(9, "q").with_deadline_ms(75));
        match req.validate(8) {
            Ok(Command::Ask { deadline_ms, .. }) => assert_eq!(deadline_ms, Some(75)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn protocol_errors_convert_into_the_core_taxonomy() {
        let err: dwqa_core::Error = ProtocolError::UnknownKind("sing".to_owned()).into();
        assert!(matches!(&err, dwqa_core::Error::Protocol(msg) if msg.contains("sing")));
        // Protocol errors are leaves: nothing beneath them to chain to.
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn missing_optional_fields_parse_as_none() {
        let resp: Response = serde_json::from_str(r#"{"id": 3, "status": "Ok"}"#).unwrap();
        assert_eq!(resp, Response::ack(3));
        let req: Request = serde_json::from_str(r#"{"id": 1, "kind": "stats"}"#).unwrap();
        assert_eq!(req, Request::stats(1));
    }
}
