//! The bounded admission queue: per-client FIFOs drained round-robin.
//!
//! Admission happens on connection threads ([`AdmissionQueue::try_admit`]
//! never blocks — a full queue is an *explicit* shed, not an invisible
//! wait); workers block on [`AdmissionQueue::next`]. Fairness is
//! rotation-based: each dequeue takes the front job of the least
//! recently served client, so one chatty client cannot starve the rest
//! however deep its own FIFO grows.
//!
//! Drain protocol: [`AdmissionQueue::begin_drain`] stops admissions,
//! [`AdmissionQueue::await_idle`] blocks until every admitted job has
//! been executed (or the grace expires), [`AdmissionQueue::shutdown`]
//! releases the workers.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The work carried by an admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Work {
    /// Answer one question through the read path.
    Ask {
        /// The question text.
        question: String,
    },
    /// Answer several questions through the read path.
    Batch {
        /// The question texts.
        questions: Vec<String>,
    },
    /// Answer the questions and feed the answers into the warehouse
    /// (one serialized transaction on the write path).
    Feedback {
        /// The question texts.
        questions: Vec<String>,
    },
}

/// One admitted work item.
#[derive(Debug, Clone)]
pub struct Job {
    /// The connection that submitted the work.
    pub client: u64,
    /// The request's correlation id.
    pub request_id: u64,
    /// What to do.
    pub work: Work,
    /// When admission happened (queue-wait accounting).
    pub admitted_at: Instant,
    /// Per-question wall-clock deadline propagated from the request.
    pub deadline: Option<Instant>,
}

/// Why a job was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue holds `depth` jobs, at or beyond capacity.
    AtCapacity {
        /// Jobs queued at the time of the refusal.
        depth: usize,
    },
    /// The queue is draining and admits nothing new.
    Draining,
}

#[derive(Default)]
struct QueueState {
    per_client: HashMap<u64, VecDeque<Job>>,
    /// Clients with at least one queued job, least recently served first.
    rotation: VecDeque<u64>,
    queued: usize,
    in_flight: usize,
    draining: bool,
    shutdown: bool,
}

impl QueueState {
    fn pop_round_robin(&mut self) -> Option<Job> {
        let client = self.rotation.pop_front()?;
        let fifo = self.per_client.get_mut(&client)?;
        let job = fifo.pop_front()?;
        if fifo.is_empty() {
            self.per_client.remove(&client);
        } else {
            self.rotation.push_back(client);
        }
        self.queued -= 1;
        Some(job)
    }
}

/// A bounded multi-client work queue with round-robin dequeue.
pub struct AdmissionQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    idle: Condvar,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `capacity` jobs.
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity,
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // Jobs carry no invariants a panicking thread could break
        // mid-update; recover the guard rather than poisoning the
        // whole service.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a job, or refuses without blocking. On success, returns
    /// the queue depth *including* the new job.
    pub fn try_admit(&self, job: Job) -> Result<usize, AdmitError> {
        let mut state = self.lock();
        if state.draining || state.shutdown {
            return Err(AdmitError::Draining);
        }
        if state.queued >= self.capacity {
            return Err(AdmitError::AtCapacity {
                depth: state.queued,
            });
        }
        let client = job.client;
        let fifo = state.per_client.entry(client).or_default();
        let newly_active = fifo.is_empty();
        fifo.push_back(job);
        if newly_active {
            state.rotation.push_back(client);
        }
        state.queued += 1;
        let depth = state.queued;
        drop(state);
        self.work_ready.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (returning it and marking it
    /// in-flight) or the queue has shut down (returning `None`).
    pub fn next(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(job) = state.pop_round_robin() {
                state.in_flight += 1;
                return Some(job);
            }
            state = self
                .work_ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks one in-flight job finished; wakes drain waiters when the
    /// queue goes idle.
    pub fn done(&self) {
        let mut state = self.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        if state.queued == 0 && state.in_flight == 0 {
            drop(state);
            self.idle.notify_all();
        }
    }

    /// Stops admitting new jobs; queued and in-flight jobs continue.
    pub fn begin_drain(&self) {
        self.lock().draining = true;
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until every admitted job has executed, or `grace`
    /// expires. Returns whether the queue went fully idle.
    pub fn await_idle(&self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        let mut state = self.lock();
        while state.queued > 0 || state.in_flight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _timeout) = self
                .idle
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
        true
    }

    /// Releases blocked workers; [`AdmissionQueue::next`] returns
    /// `None` from here on. Jobs still queued are abandoned (drain
    /// calls this only after [`AdmissionQueue::await_idle`]).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_ready.notify_all();
    }

    /// Jobs admitted but not yet dispatched to a worker.
    pub fn depth(&self) -> usize {
        self.lock().queued
    }

    /// Jobs dispatched and still executing.
    pub fn in_flight(&self) -> usize {
        self.lock().in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(client: u64, request_id: u64) -> Job {
        Job {
            client,
            request_id,
            work: Work::Ask {
                question: format!("q{request_id}"),
            },
            admitted_at: Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn dequeue_is_round_robin_across_clients_not_fifo_overall() {
        let queue = AdmissionQueue::new(16);
        // Client 1 floods; client 2 sends one request afterwards.
        for id in 0..3 {
            queue.try_admit(job(1, id)).unwrap();
        }
        queue.try_admit(job(2, 100)).unwrap();
        let order: Vec<(u64, u64)> = (0..4)
            .map(|_| {
                let j = queue.next().unwrap();
                queue.done();
                (j.client, j.request_id)
            })
            .collect();
        // Client 2 is served second, not last.
        assert_eq!(order, vec![(1, 0), (2, 100), (1, 1), (1, 2)]);
    }

    #[test]
    fn admission_is_refused_at_capacity_with_the_depth() {
        let queue = AdmissionQueue::new(2);
        queue.try_admit(job(1, 0)).unwrap();
        assert_eq!(queue.try_admit(job(1, 1)), Ok(2));
        assert_eq!(
            queue.try_admit(job(2, 2)),
            Err(AdmitError::AtCapacity { depth: 2 })
        );
        // Draining a slot reopens admission.
        queue.next().unwrap();
        queue.done();
        assert_eq!(queue.try_admit(job(2, 2)), Ok(2));
    }

    #[test]
    fn draining_refuses_new_work_but_keeps_queued_work() {
        let queue = AdmissionQueue::new(4);
        queue.try_admit(job(1, 0)).unwrap();
        queue.begin_drain();
        assert_eq!(queue.try_admit(job(1, 1)), Err(AdmitError::Draining));
        assert_eq!(queue.depth(), 1);
        assert!(queue.next().is_some());
    }

    #[test]
    fn await_idle_blocks_until_workers_finish() {
        let queue = Arc::new(AdmissionQueue::new(4));
        for id in 0..3 {
            queue.try_admit(job(1, id)).unwrap();
        }
        queue.begin_drain();
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                while let Some(_job) = queue.next() {
                    std::thread::sleep(Duration::from_millis(5));
                    queue.done();
                }
            })
        };
        assert!(queue.await_idle(Duration::from_secs(5)));
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.in_flight(), 0);
        queue.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_releases_blocked_workers_with_none() {
        let queue = Arc::new(AdmissionQueue::new(4));
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.next())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.shutdown();
        assert!(worker.join().unwrap().is_none());
    }
}
