//! The standby's replication follower: subscribes to the primary from
//! its own applied position, replays shipped frames into the local
//! pipeline, acknowledges progress, and — when the seeded failure
//! detector fires — promotes itself.

use super::{promote, relock, ReplState, Role, MAX_LINK_FRAME};
use dwqa_core::IntegrationPipeline;
use dwqa_obs::names;
use dwqa_store::{Frame, FrameKind, FrameStream};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why a replication session ended.
enum SessionEnd {
    /// Socket closed, I/O error, or torn stream: reconnect after
    /// backoff.
    Reconnect,
    /// A sequence gap was detected (dropped frame): resubscribe
    /// immediately from the applied position.
    Gap,
    /// Stop flag or role change: exit the follower.
    Done,
}

/// Runs the follower until shutdown or promotion.
pub(crate) fn follower_loop(
    state: Arc<ReplState>,
    pipeline: Arc<Mutex<Option<IntegrationPipeline>>>,
    primary: String,
) {
    let mut last_contact: Option<Instant> = None;
    let mut connected_once = false;
    loop {
        if state.stopping() || state.role() != Role::Standby {
            return;
        }
        // Suspicion needs *sustained* silence — never promote before
        // hearing from the primary at least once.
        let suspect = matches!(
            last_contact,
            Some(t) if t.elapsed() > state.cfg.heartbeat_timeout
        );
        match connect(&state, &primary) {
            Some(socket) => {
                if connected_once {
                    state.counter(names::REPL_RECONNECTS);
                }
                connected_once = true;
                last_contact = Some(Instant::now());
                match run_session(&state, &pipeline, socket, &mut last_contact) {
                    SessionEnd::Done => return,
                    SessionEnd::Gap => {}
                    SessionEnd::Reconnect => {
                        std::thread::sleep(state.cfg.reconnect_backoff);
                    }
                }
            }
            None => {
                // Sustained silence AND a failed reconnect probe: a
                // live primary behind a flaky link still accepts
                // connects, so chaos alone never lands here.
                if suspect && state.cfg.auto_promote {
                    let _ = promote(&state, &pipeline);
                    return;
                }
                std::thread::sleep(state.cfg.reconnect_backoff);
            }
        }
    }
}

fn connect(state: &ReplState, primary: &str) -> Option<TcpStream> {
    let addr = primary.to_socket_addrs().ok()?.next()?;
    TcpStream::connect_timeout(&addr, state.cfg.heartbeat_timeout).ok()
}

/// One subscribe-and-replay session over a connected socket.
fn run_session(
    state: &Arc<ReplState>,
    pipeline: &Arc<Mutex<Option<IntegrationPipeline>>>,
    mut socket: TcpStream,
    last_contact: &mut Option<Instant>,
) -> SessionEnd {
    let _ = socket.set_nodelay(true);
    let _ = socket.set_read_timeout(Some(state.cfg.heartbeat_timeout));
    let subscribe = Frame::subscribe(
        state.generation.load(Ordering::SeqCst),
        state.next_seq.load(Ordering::SeqCst),
    )
    .encode();
    if socket.write_all(&subscribe).is_err() {
        return SessionEnd::Reconnect;
    }

    let mut stream = FrameStream::new(MAX_LINK_FRAME);
    let mut buf = [0u8; 16384];
    loop {
        if state.stopping() || state.role() != Role::Standby {
            return SessionEnd::Done;
        }
        loop {
            match stream.next() {
                Ok(Some(frame)) => {
                    *last_contact = Some(Instant::now());
                    match handle_frame(state, pipeline, &mut socket, frame) {
                        Ok(true) => {}
                        Ok(false) => return SessionEnd::Gap,
                        Err(end) => return end,
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Torn or corrupted stream: abandon and renegotiate
                    // from our applied offset — never apply past junk.
                    state.counter(names::REPL_FRAMES_TORN);
                    return SessionEnd::Reconnect;
                }
            }
        }
        match socket.read(&mut buf) {
            Ok(0) => return SessionEnd::Reconnect,
            Ok(n) => stream.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                let silent = matches!(
                    last_contact,
                    Some(t) if t.elapsed() > state.cfg.heartbeat_timeout
                );
                if silent {
                    // Hand back to the outer loop, whose reconnect
                    // probe doubles as the liveness check.
                    return SessionEnd::Reconnect;
                }
            }
            Err(_) => return SessionEnd::Reconnect,
        }
    }
}

/// Applies one received frame. `Ok(true)` continues the session,
/// `Ok(false)` forces a resubscribe (sequence gap), `Err` ends it.
fn handle_frame(
    state: &Arc<ReplState>,
    pipeline: &Arc<Mutex<Option<IntegrationPipeline>>>,
    socket: &mut TcpStream,
    frame: Frame,
) -> Result<bool, SessionEnd> {
    let next = state.next_seq.load(Ordering::SeqCst);
    match frame.kind {
        FrameKind::Record => {
            if frame.generation < state.generation.load(Ordering::SeqCst) {
                // A fenced-out old primary resurfacing; ignore it.
                state.counter(names::REPL_FRAMES_STALE);
                return Ok(true);
            }
            if frame.counter < next {
                // Link duplicate or post-resubscribe resend: already
                // applied — re-ack so the primary's view advances.
                state.counter(names::REPL_FRAMES_DUPLICATE);
                send_ack(state, socket, next)?;
                return Ok(true);
            }
            if frame.counter > next {
                // A frame between `next` and this one was dropped.
                return Ok(false);
            }
            {
                let mut guard = relock(pipeline);
                // Re-check under the lock: promotion flips the role
                // first, so a frame from the old primary can never
                // land after we became one ourselves.
                if state.stopping() || state.role() != Role::Standby {
                    return Err(SessionEnd::Done);
                }
                let Some(p) = guard.as_mut() else {
                    return Err(SessionEnd::Done);
                };
                if p.apply_replicated_transaction(&frame.payload).is_err() {
                    // An unreplayable frame: back off and resubscribe
                    // rather than hot-looping on the same payload.
                    return Err(SessionEnd::Reconnect);
                }
                state.next_seq.store(frame.counter + 1, Ordering::SeqCst);
                state
                    .generation
                    .fetch_max(frame.generation, Ordering::SeqCst);
            }
            state.counter(names::REPL_FRAMES_APPLIED);
            update_follower_lag(state);
            send_ack(state, socket, frame.counter + 1)?;
            Ok(true)
        }
        FrameKind::Checkpoint => {
            // A checkpoint's counter is the next_seq it covers up to.
            // Apply when it moves us forward or fences a generation;
            // otherwise it is a duplicate.
            let ours = state.generation.load(Ordering::SeqCst);
            if frame.counter > next || frame.generation > ours {
                let mut guard = relock(pipeline);
                if state.stopping() || state.role() != Role::Standby {
                    return Err(SessionEnd::Done);
                }
                let Some(p) = guard.as_mut() else {
                    return Err(SessionEnd::Done);
                };
                if p.apply_replicated_checkpoint(&frame.payload).is_err() {
                    return Err(SessionEnd::Reconnect);
                }
                state.next_seq.store(frame.counter, Ordering::SeqCst);
                state
                    .generation
                    .fetch_max(frame.generation, Ordering::SeqCst);
                drop(guard);
                state.counter(names::REPL_FRAMES_APPLIED);
                update_follower_lag(state);
                send_ack(state, socket, frame.counter)?;
            } else {
                state.counter(names::REPL_FRAMES_DUPLICATE);
                send_ack(state, socket, next)?;
            }
            Ok(true)
        }
        FrameKind::Heartbeat => {
            state.counter(names::REPL_HEARTBEATS);
            state
                .primary_next_seq
                .fetch_max(frame.counter, Ordering::SeqCst);
            if let Ok(addr) = String::from_utf8(frame.payload) {
                if !addr.is_empty() {
                    *relock(&state.primary_addr) = Some(addr);
                }
            }
            update_follower_lag(state);
            if frame.counter > next {
                // The primary is ahead of us yet no record arrived:
                // something was dropped — resubscribe to re-read it.
                return Ok(false);
            }
            Ok(true)
        }
        FrameKind::Subscribe | FrameKind::Ack => Ok(true),
    }
}

fn send_ack(state: &ReplState, socket: &mut TcpStream, applied: u64) -> Result<(), SessionEnd> {
    let ack = Frame::ack(state.generation.load(Ordering::SeqCst), applied).encode();
    if socket.write_all(&ack).is_err() {
        return Err(SessionEnd::Reconnect);
    }
    Ok(())
}

/// Standby lag gauge: primary's advertised position minus ours.
fn update_follower_lag(state: &ReplState) {
    let primary = state.primary_next_seq.load(Ordering::SeqCst);
    let ours = state.next_seq.load(Ordering::SeqCst);
    state
        .registry
        .gauge(names::REPL_LAG)
        .set(primary.saturating_sub(ours));
}
