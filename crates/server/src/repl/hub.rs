//! The primary's replication hub: accepts standby subscriptions,
//! seeds each with a catch-up backlog read under the pipeline lock,
//! and runs one writer thread per peer that drains its frame queue
//! through the seeded link-fault layer.

use super::{relock, Peer, ReplState, MAX_LINK_FRAME};
use dwqa_core::IntegrationPipeline;
use dwqa_faults::LinkAction;
use dwqa_obs::names;
use dwqa_store::{Frame, FrameKind, FrameStream};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop polls the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Runs the hub accept loop until shutdown. `listener` must already be
/// non-blocking.
pub(crate) fn hub_loop(
    state: Arc<ReplState>,
    pipeline: Arc<Mutex<Option<IntegrationPipeline>>>,
    listener: TcpListener,
) {
    while !state.stopping() {
        match listener.accept() {
            Ok((socket, addr)) => {
                let state = Arc::clone(&state);
                let pipeline = Arc::clone(&pipeline);
                let label = addr.to_string();
                state.clone().spawn(move || {
                    subscriber_session(&state, &pipeline, socket, label);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Handles one standby from subscribe to disconnect: reads its resume
/// offset, seeds the backlog, then ships frames and heartbeats.
fn subscriber_session(
    state: &Arc<ReplState>,
    pipeline: &Arc<Mutex<Option<IntegrationPipeline>>>,
    socket: TcpStream,
    label: String,
) {
    let _ = socket.set_nodelay(true);
    let _ = socket.set_read_timeout(Some(state.cfg.heartbeat_timeout));
    let Some(subscribe) = read_subscribe(state, &socket) else {
        return;
    };

    // Backlog read and peer registration happen under the pipeline
    // lock: the store's FrameTap also fires under that lock, so every
    // frame is either in this backlog or broadcast to the registered
    // peer — no window where one is missed.
    let peer = {
        let guard = relock(pipeline);
        let Some(p) = guard.as_ref() else {
            return;
        };
        let backlog = match p.store() {
            Some(store) => match store.replication_backlog(subscribe.counter) {
                Ok(frames) => frames,
                Err(_) => return,
            },
            None => Vec::new(),
        };
        for _ in &backlog {
            state.counter(names::REPL_CATCHUP_FRAMES);
        }
        let writer = match socket.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let peer = Arc::new(Peer::new(label, backlog, writer));
        state.register_peer(&peer);
        peer
    };

    // Ack reader: a second thread drains the standby's ack frames so
    // a slow writer never starves quorum progress.
    {
        let state = Arc::clone(state);
        let peer = Arc::clone(&peer);
        let reader = socket;
        state.clone().spawn(move || {
            ack_reader(&state, &peer, reader);
        });
    }

    writer_loop(state, &peer, subscribe.counter);
    state.remove_peer(&peer);
}

/// Reads the standby's subscribe frame, or `None` on a bad/slow hello.
fn read_subscribe(state: &ReplState, socket: &TcpStream) -> Option<Frame> {
    let mut stream = FrameStream::new(MAX_LINK_FRAME);
    let mut socket = socket;
    let mut buf = [0u8; 4096];
    loop {
        if state.stopping() {
            return None;
        }
        match stream.next() {
            Ok(Some(frame)) if frame.kind == FrameKind::Subscribe => return Some(frame),
            Ok(Some(_)) => return None,
            Ok(None) => {}
            Err(_) => return None,
        }
        match socket.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => stream.push(&buf[..n]),
            Err(_) => return None,
        }
    }
}

/// Drains the standby's acks until its socket closes.
fn ack_reader(state: &ReplState, peer: &Arc<Peer>, mut socket: TcpStream) {
    let mut stream = FrameStream::new(MAX_LINK_FRAME);
    let mut buf = [0u8; 4096];
    while !state.stopping() && peer.connected.load(Ordering::SeqCst) {
        loop {
            match stream.next() {
                Ok(Some(frame)) if frame.kind == FrameKind::Ack => {
                    state.record_ack(peer, frame.counter);
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    peer.disconnect();
                    return;
                }
            }
        }
        match socket.read(&mut buf) {
            Ok(0) => {
                peer.disconnect();
                return;
            }
            Ok(n) => stream.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                peer.disconnect();
                return;
            }
        }
    }
}

/// Ships queued frames (through the chaos layer) and heartbeats when
/// idle, until the peer disconnects or the hub stops.
fn writer_loop(state: &Arc<ReplState>, peer: &Arc<Peer>, resume: u64) {
    let mut writer = match peer_writer(peer) {
        Some(w) => w,
        None => return,
    };
    // Hello heartbeat: announce the advertised client address right
    // away, so a fresh standby can redirect clients before the link
    // ever goes idle. It carries the *subscriber's* granted resume
    // offset, not our position — the backlog is still queued behind
    // it, and advertising further ahead would read as a gap.
    let hello = Frame::heartbeat(
        state.generation.load(Ordering::SeqCst),
        resume,
        &state.advertised,
    )
    .encode();
    if writer.write_all(&hello).is_err() {
        return;
    }
    while !state.stopping() && peer.connected.load(Ordering::SeqCst) {
        match peer.pop_wait(state.cfg.heartbeat_interval) {
            Some(frame) => {
                if !ship_frame(state, &mut writer, &frame) {
                    return;
                }
            }
            None => {
                // Idle: heartbeat carries the primary's position so a
                // follower missing dropped frames detects the gap, and
                // the advertised address so it can redirect clients.
                let hb = Frame::heartbeat(
                    state.generation.load(Ordering::SeqCst),
                    state.next_seq.load(Ordering::SeqCst),
                    &state.advertised,
                )
                .encode();
                if writer.write_all(&hb).is_err() {
                    return;
                }
            }
        }
    }
}

fn peer_writer(peer: &Arc<Peer>) -> Option<TcpStream> {
    peer.writer_clone()
}

/// Writes one record/checkpoint frame through the seeded link-fault
/// layer. Returns `false` when the connection must be abandoned (torn
/// write, half-open stall, or I/O error) — the follower resubscribes.
fn ship_frame(state: &ReplState, writer: &mut TcpStream, frame: &[u8]) -> bool {
    let decision = match &state.link_fault {
        Some(fault) => relock(fault).decide(frame.len()),
        None => dwqa_faults::LinkDecision::deliver(),
    };
    match decision.action {
        LinkAction::Drop => {
            // Silently lose the frame; the follower's gap detection
            // (next heartbeat or next record seq) forces a resubscribe
            // that re-reads it from the primary's backlog.
            state.counter(names::REPL_LINK_DROPS);
            true
        }
        LinkAction::Tear(keep) => {
            state.counter(names::REPL_LINK_TEARS);
            let keep = keep.min(frame.len());
            let _ = writer.write_all(&frame[..keep]);
            false
        }
        LinkAction::HalfOpen => {
            // Stall without writing, then abandon: models a link that
            // went dark while the kernel still buffered.
            state.counter(names::REPL_LINK_HALF_OPEN);
            std::thread::sleep(state.cfg.heartbeat_timeout);
            false
        }
        LinkAction::Deliver => {
            if let Some(delay) = decision.delay {
                std::thread::sleep(delay);
            }
            if writer.write_all(frame).is_err() {
                return false;
            }
            state.counter(names::REPL_FRAMES_SHIPPED);
            if decision.duplicate {
                if writer.write_all(frame).is_err() {
                    return false;
                }
                state.counter(names::REPL_FRAMES_SHIPPED);
            }
            true
        }
    }
}
