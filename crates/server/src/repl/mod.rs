//! Warm-standby replication: WAL shipping, failure detection, and
//! promotion (DESIGN.md §15).
//!
//! A **primary** [`crate::QaServer`] taps its feedback store's durable
//! frames (`dwqa_store::FrameTap`) and ships them verbatim over a TCP
//! replication link to N **standbys**. Each standby replays the frames
//! into its own pipeline — serving read-only `ask`/`batch`/`stats`
//! while refusing `feedback` with a typed `NotPrimary` redirect — and
//! acknowledges its applied position. Two modes:
//!
//! * **sync(quorum)** — a feedback commit is acknowledged to the
//!   client only after `quorum` standbys have applied it: zero
//!   acknowledged-feedback loss across a primary crash. A quorum
//!   timeout answers `busy`/`ReplicationLag` (committed locally, *not*
//!   acknowledged; the retry deduplicates).
//! * **async(budget)** — commits acknowledge immediately while the
//!   worst connected standby stays within `budget` frames; beyond it,
//!   commits block (backpressure) so staleness stays bounded.
//!
//! A standby is promoted by drain-handoff (the `promote` verb) or by
//! the seeded failure detector: sustained heartbeat silence *and* a
//! failed reconnect (a live primary always accepts reconnects, so link
//! chaos alone never false-promotes). Promotion bumps the store
//! generation above everything the old primary ever stamped, so a
//! resurrected old primary is fenced out by the existing
//! stale-generation logic.
//!
//! The link runs under the seeded [`LinkPlan`] chaos layer (drops,
//! delays, torn frames, duplicates, half-open stalls); followers
//! recover by resubscribing from their own applied sequence and
//! deduplicate by frame sequence number, so chaos costs latency, never
//! correctness.

pub(crate) mod follower;
pub(crate) mod hub;

use crate::protocol::PeerStatus;
use dwqa_common::ConfigError;
use dwqa_core::IntegrationPipeline;
use dwqa_faults::{LinkFault, LinkPlan};
use dwqa_obs::{names, MetricsRegistry};
use std::collections::VecDeque;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest frame a follower will buffer off the link (checkpoint
/// snapshots ride the link on catch-up, so this is well above the
/// store's per-record ceiling).
pub(crate) const MAX_LINK_FRAME: usize = 256 << 20;

pub(crate) fn relock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which side of the replication link a server is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts `feedback`, ships WAL frames to standbys.
    Primary,
    /// Applies shipped frames, serves reads, refuses `feedback`.
    Standby,
}

impl Role {
    /// `primary` / `standby`.
    pub fn label(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Standby => "standby",
        }
    }
}

/// When a feedback commit is acknowledged relative to replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Ack only after `quorum` standbys applied the commit.
    Sync {
        /// Standbys that must apply before the client sees `ok`.
        quorum: usize,
    },
    /// Ack immediately while the worst connected standby is within
    /// `staleness_budget` frames; block (backpressure) beyond it.
    Async {
        /// Maximum frames a connected standby may lag.
        staleness_budget: u64,
    },
}

impl ReplicationMode {
    /// `sync(q)` / `async(b)` for reports.
    pub fn label(&self) -> String {
        match self {
            ReplicationMode::Sync { quorum } => format!("sync({quorum})"),
            ReplicationMode::Async { staleness_budget } => format!("async({staleness_budget})"),
        }
    }
}

/// Replication knobs, validated by [`ReplicationConfig::validate`] /
/// the builder.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Sync quorum or async staleness budget.
    pub mode: ReplicationMode,
    /// How often an idle primary sends a heartbeat per peer.
    pub heartbeat_interval: Duration,
    /// Silence longer than this marks the primary suspect (and bounds
    /// a follower's blocking reads).
    pub heartbeat_timeout: Duration,
    /// How long a sync commit waits for its quorum before answering
    /// `busy`/`ReplicationLag`.
    pub ack_timeout: Duration,
    /// Pause between a follower's reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Seeded chaos plan for the link (None = clean link).
    pub link_fault: Option<LinkPlan>,
    /// Whether a standby promotes itself when the failure detector
    /// fires (silence + failed reconnect).
    pub auto_promote: bool,
}

impl Default for ReplicationConfig {
    fn default() -> ReplicationConfig {
        ReplicationConfig {
            mode: ReplicationMode::Sync { quorum: 1 },
            heartbeat_interval: Duration::from_millis(40),
            heartbeat_timeout: Duration::from_millis(250),
            ack_timeout: Duration::from_secs(2),
            reconnect_backoff: Duration::from_millis(20),
            link_fault: None,
            auto_promote: false,
        }
    }
}

impl ReplicationConfig {
    /// A builder over the defaults.
    pub fn builder() -> ReplicationConfigBuilder {
        ReplicationConfigBuilder {
            cfg: ReplicationConfig::default(),
        }
    }

    /// Checks every knob, naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.mode {
            ReplicationMode::Sync { quorum: 0 } => {
                return Err(ConfigError::new("quorum", "must be at least 1"));
            }
            ReplicationMode::Async {
                staleness_budget: 0,
            } => {
                return Err(ConfigError::new("staleness_budget", "must be at least 1"));
            }
            _ => {}
        }
        if self.heartbeat_interval.is_zero() {
            return Err(ConfigError::new("heartbeat_interval", "must be non-zero"));
        }
        if self.heartbeat_timeout <= self.heartbeat_interval {
            return Err(ConfigError::new(
                "heartbeat_timeout",
                "must exceed heartbeat_interval",
            ));
        }
        if self.ack_timeout.is_zero() {
            return Err(ConfigError::new("ack_timeout", "must be non-zero"));
        }
        if self.reconnect_backoff.is_zero() {
            return Err(ConfigError::new("reconnect_backoff", "must be non-zero"));
        }
        Ok(())
    }
}

/// Builder for [`ReplicationConfig`]; `build` validates.
#[derive(Debug, Clone)]
pub struct ReplicationConfigBuilder {
    cfg: ReplicationConfig,
}

impl ReplicationConfigBuilder {
    /// Sets the replication mode.
    pub fn mode(mut self, mode: ReplicationMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.cfg.heartbeat_interval = interval;
        self
    }

    /// Sets the heartbeat (failure-suspicion) timeout.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.heartbeat_timeout = timeout;
        self
    }

    /// Sets the sync-quorum ack timeout.
    pub fn ack_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.ack_timeout = timeout;
        self
    }

    /// Sets the follower reconnect backoff.
    pub fn reconnect_backoff(mut self, backoff: Duration) -> Self {
        self.cfg.reconnect_backoff = backoff;
        self
    }

    /// Arms the seeded link-chaos layer.
    pub fn link_fault(mut self, plan: Option<LinkPlan>) -> Self {
        self.cfg.link_fault = plan;
        self
    }

    /// Enables the seeded failure detector on a standby.
    pub fn auto_promote(mut self, enabled: bool) -> Self {
        self.cfg.auto_promote = enabled;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<ReplicationConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One standby as the primary's hub tracks it: a frame queue its
/// writer thread drains, its acknowledged position, and the socket
/// (kept for shutdown).
pub(crate) struct Peer {
    pub(crate) addr: String,
    queue: Mutex<VecDeque<Vec<u8>>>,
    wake: Condvar,
    pub(crate) acked: AtomicU64,
    pub(crate) connected: AtomicBool,
    socket: TcpStream,
}

impl Peer {
    pub(crate) fn new(addr: String, backlog: Vec<Vec<u8>>, socket: TcpStream) -> Peer {
        Peer {
            addr,
            queue: Mutex::new(backlog.into()),
            wake: Condvar::new(),
            acked: AtomicU64::new(0),
            connected: AtomicBool::new(true),
            socket,
        }
    }

    pub(crate) fn push(&self, frame: Vec<u8>) {
        relock(&self.queue).push_back(frame);
        self.wake.notify_all();
    }

    /// Pops the next queued frame, waiting up to `timeout`.
    pub(crate) fn pop_wait(&self, timeout: Duration) -> Option<Vec<u8>> {
        let mut queue = relock(&self.queue);
        if let Some(frame) = queue.pop_front() {
            return Some(frame);
        }
        let (mut queue, _) = self
            .wake
            .wait_timeout(queue, timeout)
            .unwrap_or_else(|e| e.into_inner());
        queue.pop_front()
    }

    /// A second handle on the peer socket for the writer thread (the
    /// original stays with the ack reader).
    pub(crate) fn writer_clone(&self) -> Option<TcpStream> {
        self.socket.try_clone().ok()
    }

    pub(crate) fn disconnect(&self) {
        self.connected.store(false, Ordering::SeqCst);
        let _ = self.socket.shutdown(Shutdown::Both);
        self.wake.notify_all();
    }
}

/// Shared replication state: role, position, peers, and the ack
/// signal the sync write path blocks on.
pub(crate) struct ReplState {
    pub(crate) cfg: ReplicationConfig,
    role: AtomicU8,
    /// Highest store generation seen (primary: its own; standby: the
    /// max over received frames — the promotion fence floor).
    pub(crate) generation: AtomicU64,
    /// Replication position: the primary's shipped `next_seq`, or a
    /// standby's applied-from-primary `next_seq`.
    pub(crate) next_seq: AtomicU64,
    /// Standby: the primary's position from the last heartbeat.
    pub(crate) primary_next_seq: AtomicU64,
    /// Standby: the primary's advertised client address (the
    /// `NotPrimary` redirect), learned from heartbeats.
    pub(crate) primary_addr: Mutex<Option<String>>,
    /// True on a primary that runs a shipping hub (quorum enforced).
    /// A promoted standby runs standalone-durable (no hub): reads and
    /// writes flow, but no quorum is awaited — honest degraded mode.
    pub(crate) hub: bool,
    /// This server's client address (heartbeat payload).
    pub(crate) advertised: String,
    pub(crate) peers: Mutex<Vec<Arc<Peer>>>,
    ack_lock: Mutex<()>,
    ack_signal: Condvar,
    pub(crate) stop: AtomicBool,
    pub(crate) registry: Arc<MetricsRegistry>,
    pub(crate) threads: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) link_fault: Option<Mutex<LinkFault>>,
}

impl ReplState {
    pub(crate) fn new(
        cfg: ReplicationConfig,
        role: Role,
        hub: bool,
        advertised: String,
        generation: u64,
        next_seq: u64,
        registry: Arc<MetricsRegistry>,
    ) -> ReplState {
        let link_fault = cfg.link_fault.map(|plan| Mutex::new(LinkFault::new(plan)));
        ReplState {
            cfg,
            role: AtomicU8::new(match role {
                Role::Primary => 0,
                Role::Standby => 1,
            }),
            generation: AtomicU64::new(generation),
            next_seq: AtomicU64::new(next_seq),
            primary_next_seq: AtomicU64::new(0),
            primary_addr: Mutex::new(None),
            hub,
            advertised,
            peers: Mutex::new(Vec::new()),
            ack_lock: Mutex::new(()),
            ack_signal: Condvar::new(),
            stop: AtomicBool::new(false),
            registry,
            threads: Mutex::new(Vec::new()),
            link_fault,
        }
    }

    pub(crate) fn role(&self) -> Role {
        match self.role.load(Ordering::SeqCst) {
            0 => Role::Primary,
            _ => Role::Standby,
        }
    }

    pub(crate) fn set_role(&self, role: Role) {
        self.role.store(
            match role {
                Role::Primary => 0,
                Role::Standby => 1,
            },
            Ordering::SeqCst,
        );
    }

    pub(crate) fn counter(&self, name: &'static str) {
        self.registry.counter(name).inc();
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The [`dwqa_store::FrameTap`] body: fans a durable frame out to
    /// every connected peer's queue, then advances the shipped
    /// position. Runs under the pipeline lock (the store invokes taps
    /// inside `append`/`checkpoint`), which is exactly what makes
    /// subscribe-time backlog reads race-free: a frame is either in
    /// the backlog a new peer is seeded with, or broadcast to it here
    /// — never neither, never both.
    pub(crate) fn broadcast(&self, next_seq: u64, frame: &[u8]) {
        if frame.len() >= 20 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&frame[12..20]);
            self.generation
                .fetch_max(u64::from_le_bytes(word), Ordering::SeqCst);
        }
        for peer in relock(&self.peers).iter() {
            if peer.connected.load(Ordering::SeqCst) {
                peer.push(frame.to_vec());
            }
        }
        self.next_seq.fetch_max(next_seq, Ordering::SeqCst);
    }

    /// Registers a freshly subscribed peer. Must be called under the
    /// pipeline lock, with `backlog` read under that same lock.
    pub(crate) fn register_peer(&self, peer: &Arc<Peer>) {
        relock(&self.peers).push(Arc::clone(peer));
    }

    pub(crate) fn remove_peer(&self, peer: &Arc<Peer>) {
        peer.disconnect();
        relock(&self.peers).retain(|p| !Arc::ptr_eq(p, peer));
        self.notify_acks();
        self.update_lag_gauge();
    }

    /// Records a standby's acknowledged position and wakes any commit
    /// blocked on the quorum.
    pub(crate) fn record_ack(&self, peer: &Peer, acked: u64) {
        peer.acked.fetch_max(acked, Ordering::SeqCst);
        self.counter(names::REPL_ACKS);
        self.notify_acks();
        self.update_lag_gauge();
    }

    pub(crate) fn notify_acks(&self) {
        let _guard = relock(&self.ack_lock);
        self.ack_signal.notify_all();
    }

    fn min_connected_acked(&self) -> Option<u64> {
        relock(&self.peers)
            .iter()
            .filter(|p| p.connected.load(Ordering::SeqCst))
            .map(|p| p.acked.load(Ordering::SeqCst))
            .min()
    }

    fn acked_count(&self, target: u64) -> usize {
        relock(&self.peers)
            .iter()
            .filter(|p| {
                p.connected.load(Ordering::SeqCst) && p.acked.load(Ordering::SeqCst) >= target
            })
            .count()
    }

    pub(crate) fn update_lag_gauge(&self) {
        let next = self.next_seq.load(Ordering::SeqCst);
        let lag = self
            .min_connected_acked()
            .map_or(0, |min| next.saturating_sub(min));
        self.registry.gauge(names::REPL_LAG).set(lag);
    }

    /// Blocks a committed feedback transaction until replication
    /// policy allows acknowledging it: sync — `quorum` peers applied
    /// up to `target`; async — every connected peer is within the
    /// staleness budget. Returns `false` on timeout or shutdown (the
    /// commit stands locally; the caller answers `ReplicationLag`).
    pub(crate) fn replication_wait(&self, target: u64) -> bool {
        if !self.hub {
            return true;
        }
        let deadline = Instant::now() + self.cfg.ack_timeout;
        let mut guard = relock(&self.ack_lock);
        loop {
            if self.stopping() {
                return false;
            }
            let satisfied = match self.cfg.mode {
                ReplicationMode::Sync { quorum } => self.acked_count(target) >= quorum,
                ReplicationMode::Async { staleness_budget } => {
                    match self.min_connected_acked() {
                        // Bounded staleness binds live links only: with
                        // no standby connected there is nothing to lag.
                        None => true,
                        Some(min) => target.saturating_sub(min) <= staleness_budget,
                    }
                }
            };
            if satisfied {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Cap each wait so peer disconnects (which change the
            // answer without an ack arriving) are noticed promptly.
            let wait = (deadline - now).min(Duration::from_millis(20));
            let (g, _) = self
                .ack_signal
                .wait_timeout(guard, wait)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    /// Drain-handoff flush: waits (bounded) until every connected peer
    /// acknowledged the current shipped position, so a standby
    /// promoted right after a graceful drain has everything.
    pub(crate) fn flush(&self, timeout: Duration) {
        let target = self.next_seq.load(Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline && !self.stopping() {
            let peers = relock(&self.peers);
            let connected = peers
                .iter()
                .filter(|p| p.connected.load(Ordering::SeqCst))
                .collect::<Vec<_>>();
            let all_caught_up = connected
                .iter()
                .all(|p| p.acked.load(Ordering::SeqCst) >= target);
            drop(peers);
            if all_caught_up {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Per-peer shipping status for the `replicas` report.
    pub(crate) fn peer_statuses(&self) -> Vec<PeerStatus> {
        let next = self.next_seq.load(Ordering::SeqCst);
        relock(&self.peers)
            .iter()
            .map(|p| {
                let acked = p.acked.load(Ordering::SeqCst);
                PeerStatus {
                    addr: p.addr.clone(),
                    acked_seq: acked,
                    lag: next.saturating_sub(acked),
                    connected: p.connected.load(Ordering::SeqCst),
                }
            })
            .collect()
    }

    /// Stops every replication thread: sets the stop flag, closes peer
    /// sockets, and wakes all waiters. Idempotent; joining is separate
    /// ([`ReplState::join_threads`]).
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for peer in relock(&self.peers).iter() {
            peer.disconnect();
        }
        self.notify_acks();
    }

    pub(crate) fn join_threads(&self) {
        // Subscriber threads spawn ack-reader threads, so new handles
        // can land while joining; loop until the list stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = relock(&self.threads).drain(..).collect();
            if handles.is_empty() {
                return;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }

    pub(crate) fn spawn(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) {
        let handle = std::thread::spawn(f);
        relock(&self.threads).push(handle);
    }
}

/// Promotes a standby to primary: flips the role (so in-flight applies
/// halt), fences the generation above everything the old primary ever
/// stamped, and checkpoints the current state as the new recovery
/// base. Returns the fenced generation.
pub(crate) fn promote(
    state: &ReplState,
    pipeline: &Mutex<Option<IntegrationPipeline>>,
) -> Result<u64, String> {
    // Role first: the follower re-checks it under the pipeline lock
    // before every apply, so no old-primary frame lands after this.
    state.set_role(Role::Primary);
    let floor = state.generation.load(Ordering::SeqCst);
    let mut guard = relock(pipeline);
    let Some(p) = guard.as_mut() else {
        return Err("service stopped".to_owned());
    };
    match p.promote_generation(floor) {
        Ok(generation) => {
            state.generation.store(generation, Ordering::SeqCst);
            state.counter(names::REPL_PROMOTIONS);
            Ok(generation)
        }
        Err(e) => Err(e.to_string()),
    }
}
