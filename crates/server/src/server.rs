//! The service itself: accept loop, connection threads, worker pool,
//! replication wiring, and the graceful drain sequence.
//!
//! Thread layout:
//!
//! * **accept loop** (one thread) — non-blocking accept, polls the
//!   drain flag; on drain it stops accepting, waits the queue idle,
//!   joins the workers, flushes and stops replication, shuts every
//!   client socket, joins the connection threads;
//! * **connection threads** (one per client) — read request lines,
//!   decide admission *inline* (drain check → token bucket → queue
//!   capacity) and answer `stats`/`drain`/`replicas`/`promote`
//!   directly, so backpressure responses never wait behind queued
//!   work;
//! * **workers** (`ServerConfig::workers` threads) — execute admitted
//!   jobs against the shared [`QaEngine`]; feedback jobs additionally
//!   take the pipeline lock for one serialized transaction, and on a
//!   replicating primary block (outside the lock) until the
//!   replication policy lets the commit be acknowledged;
//! * **replication threads** (primary: hub accept + per-peer writer
//!   and ack-reader pairs; standby: one follower) — see
//!   [`crate::repl`].
//!
//! Responses are written wherever they are produced: each client has
//! one write handle behind a mutex, every response is a single
//! `write_all` of one JSON line, so interleaving is line-atomic.

use crate::config::ServerConfig;
use crate::protocol::{
    BusyReason, Command, ProtocolError, ReplicasReport, Request, Response, ServiceStats,
};
use crate::queue::{AdmissionQueue, AdmitError, Job, Work};
use crate::repl::{self, ReplState, ReplicationConfig, Role};
use crate::TokenBucket;
use dwqa_core::IntegrationPipeline;
use dwqa_engine::{QaEngine, QuestionReport, SubmitBatch};
use dwqa_obs::{names, MetricsRegistry};
use dwqa_store::FrameTap;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections / drain.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

pub(crate) fn relock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// How a replicated server comes up (internal to the `start_*`
/// constructors).
enum ReplInit {
    /// Ship WAL frames from this server's store to subscribers on
    /// `listener`.
    Primary {
        cfg: ReplicationConfig,
        listener: TcpListener,
    },
    /// Follow the primary's replication endpoint at `primary`.
    Standby {
        cfg: ReplicationConfig,
        primary: String,
    },
}

/// State shared by every service thread.
struct Shared {
    cfg: ServerConfig,
    engine: QaEngine,
    /// Whether the pipeline had a durable store attached at start
    /// (ownership cannot change while the service runs).
    durable: bool,
    /// The write path. `None` once [`QaServer::join`] has reclaimed it.
    /// Shared with the replication threads (hub backlog reads, frame
    /// applies), hence the `Arc`.
    pipeline: Arc<Mutex<Option<IntegrationPipeline>>>,
    queue: AdmissionQueue,
    registry: Arc<MetricsRegistry>,
    /// Set by [`QaServer::drain`] or a wire `drain`; the accept loop
    /// polls it and runs the drain sequence.
    drain_flag: AtomicBool,
    /// Set by [`QaServer::kill`]: skip every grace period in the drain
    /// sequence (crash simulation for failover experiments).
    killed: AtomicBool,
    next_client: AtomicU64,
    /// Replication state, when this server is a primary or standby.
    repl: Option<Arc<ReplState>>,
    /// Per-client write handles; doubles as the connection registry
    /// the drain sequence closes.
    writers: Mutex<HashMap<u64, Arc<Mutex<TcpStream>>>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    worker_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn counter(&self, name: &'static str) {
        self.registry.counter(name).inc();
    }

    fn set_clients_gauge(&self) {
        let clients = relock(&self.writers).len() as u64;
        self.registry.gauge(names::SERVER_CLIENTS).set(clients);
    }

    /// Writes one response line to a client, if it is still connected.
    fn respond(&self, client: u64, response: &Response) {
        let writer = relock(&self.writers).get(&client).cloned();
        let Some(writer) = writer else {
            return; // client left; admitted work still counted as done
        };
        let Ok(mut line) = serde_json::to_string(response) else {
            return;
        };
        line.push('\n');
        let mut stream = relock(&writer);
        let _ = stream.write_all(line.as_bytes());
    }

    fn service_stats(&self) -> ServiceStats {
        let stats = self.engine.stats();
        ServiceStats {
            requests: self.registry.counter_value(names::SERVER_REQUESTS),
            admitted: self.registry.counter_value(names::SERVER_ADMITTED),
            shed: self.registry.counter_value(names::SERVER_SHED),
            rate_limited: self.registry.counter_value(names::SERVER_RATE_LIMITED),
            drained: self.registry.counter_value(names::SERVER_DRAINED),
            completed: self.registry.counter_value(names::SERVER_COMPLETED),
            protocol_errors: self.registry.counter_value(names::SERVER_PROTOCOL_ERRORS),
            disconnects_timeout: self
                .registry
                .counter_value(names::SERVER_DISCONNECTS_TIMEOUT),
            queue_depth: self.queue.depth() as u64,
            clients: self.registry.gauge_value(names::SERVER_CLIENTS),
            questions: stats.questions(),
            cache_hits: stats.cache_hits(),
            cache_misses: stats.cache_misses(),
            cache_entries: self.engine.cache().len() as u64,
            revision: self.engine.read_path().revision(),
            durable: self.durable,
            wal_appends: self.registry.counter_value(names::STORE_WAL_APPENDS),
        }
    }

    /// The `replicas` report: role, mode, position, and peer status.
    fn replicas_report(&self) -> ReplicasReport {
        let Some(state) = &self.repl else {
            return ReplicasReport {
                role: "none".to_owned(),
                mode: "none".to_owned(),
                ..ReplicasReport::default()
            };
        };
        let role = state.role();
        let next_seq = state.next_seq.load(Ordering::SeqCst);
        let lag = match role {
            Role::Standby => Some(
                state
                    .primary_next_seq
                    .load(Ordering::SeqCst)
                    .saturating_sub(next_seq),
            ),
            // A primary's lag story is per-peer; see `peers`.
            Role::Primary => None,
        };
        ReplicasReport {
            role: role.label().to_owned(),
            mode: state.cfg.mode.label(),
            generation: state.generation.load(Ordering::SeqCst),
            next_seq,
            lag,
            primary: relock(&state.primary_addr).clone(),
            peers: state.peer_statuses(),
        }
    }
}

/// The long-lived multi-client QA service. See the crate docs for the
/// protocol and the degradation model, and [`crate::repl`] for the
/// warm-standby replication layer.
pub struct QaServer {
    addr: SocketAddr,
    repl_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl QaServer {
    /// Binds `addr` (use port 0 for an ephemeral port), takes ownership
    /// of the pipeline, and starts the accept loop and worker pool.
    pub fn start(
        pipeline: IntegrationPipeline,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<QaServer> {
        QaServer::start_inner(pipeline, cfg, addr, None)
    }

    /// Starts a replicating **primary**: like [`QaServer::start`], plus
    /// a replication hub on `repl_addr` that ships the store's durable
    /// WAL frames to subscribed standbys. Requires a durable pipeline.
    pub fn start_primary(
        pipeline: IntegrationPipeline,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
        repl_addr: impl ToSocketAddrs,
        repl_cfg: ReplicationConfig,
    ) -> io::Result<QaServer> {
        let listener = TcpListener::bind(repl_addr)?;
        listener.set_nonblocking(true)?;
        let init = ReplInit::Primary {
            cfg: repl_cfg,
            listener,
        };
        QaServer::start_inner(pipeline, cfg, addr, Some(init))
    }

    /// Starts a warm **standby**: serves read-only `ask`/`batch`/`stats`
    /// from its own pipeline, refuses `feedback` with a `NotPrimary`
    /// redirect, and follows `primary` (a replication-endpoint address)
    /// to stay current. The pipeline starts empty — the first subscribe
    /// full-syncs via the primary's checkpoint + WAL backlog.
    pub fn start_standby(
        pipeline: IntegrationPipeline,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
        primary: &str,
        repl_cfg: ReplicationConfig,
    ) -> io::Result<QaServer> {
        let init = ReplInit::Standby {
            cfg: repl_cfg,
            primary: primary.to_owned(),
        };
        QaServer::start_inner(pipeline, cfg, addr, Some(init))
    }

    fn start_inner(
        mut pipeline: IntegrationPipeline,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
        repl_init: Option<ReplInit>,
    ) -> io::Result<QaServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if let Some(init) = &repl_init {
            let rcfg = match init {
                ReplInit::Primary { cfg, .. } | ReplInit::Standby { cfg, .. } => cfg,
            };
            rcfg.validate()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            if matches!(init, ReplInit::Primary { .. }) && !pipeline.is_durable() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "a replication primary requires a durable pipeline (WAL frames are what ship)",
                ));
            }
        }
        let engine = QaEngine::new(&pipeline)
            .with_workers(cfg.workers)
            .with_cache_capacity(cfg.cache_capacity)
            .with_tracing(cfg.tracing);
        let registry = Arc::clone(engine.stats().registry());

        let mut repl_state = None;
        let mut repl_listener = None;
        let mut follower_primary = None;
        let mut repl_addr = None;
        match repl_init {
            None => {}
            Some(ReplInit::Primary {
                cfg: rcfg,
                listener: rlistener,
            }) => {
                repl_addr = Some(rlistener.local_addr()?);
                let (generation, next_seq) = pipeline
                    .store()
                    .map(|s| (s.generation(), s.next_seq()))
                    .unwrap_or((0, 0));
                let state = Arc::new(ReplState::new(
                    rcfg,
                    Role::Primary,
                    true,
                    addr.to_string(),
                    generation,
                    next_seq,
                    Arc::clone(&registry),
                ));
                // The tap fires inside the store's append/checkpoint,
                // i.e. under the pipeline lock — only durable frames
                // ship, and the hub's subscribe-time backlog reads are
                // race-free against it.
                let tap_state = Arc::clone(&state);
                if let Some(store) = pipeline.store_mut() {
                    store.set_tap(Some(FrameTap::new(move |next_seq, frame| {
                        tap_state.broadcast(next_seq, frame);
                    })));
                }
                repl_listener = Some(rlistener);
                repl_state = Some(state);
            }
            Some(ReplInit::Standby { cfg: rcfg, primary }) => {
                // Position 0 in the *primary's* sequence space: the
                // standby's own store seqs are unrelated, and seq 0
                // asks the primary for a full sync.
                let state = Arc::new(ReplState::new(
                    rcfg,
                    Role::Standby,
                    false,
                    addr.to_string(),
                    0,
                    0,
                    Arc::clone(&registry),
                ));
                follower_primary = Some(primary);
                repl_state = Some(state);
            }
        }

        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            cfg,
            engine,
            durable: pipeline.is_durable(),
            pipeline: Arc::new(Mutex::new(Some(pipeline))),
            registry,
            drain_flag: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            next_client: AtomicU64::new(1),
            repl: repl_state,
            writers: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            worker_threads: Mutex::new(Vec::new()),
        });
        if let Some(state) = &shared.repl {
            if let Some(rlistener) = repl_listener {
                let s = Arc::clone(state);
                let p = Arc::clone(&shared.pipeline);
                state.spawn(move || repl::hub::hub_loop(s, p, rlistener));
            }
            if let Some(primary) = follower_primary {
                let s = Arc::clone(state);
                let p = Arc::clone(&shared.pipeline);
                state.spawn(move || repl::follower::follower_loop(s, p, primary));
            }
        }
        {
            let mut workers = relock(&shared.worker_threads);
            for _ in 0..shared.cfg.workers {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || worker_loop(&shared)));
            }
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(QaServer {
            addr,
            repl_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replication hub's bound address (primaries only).
    pub fn replication_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// This server's current replication role, `None` when replication
    /// is not configured.
    pub fn role(&self) -> Option<Role> {
        self.shared.repl.as_ref().map(|s| s.role())
    }

    /// The engine's metrics registry (admission counters included).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// The engine serving the read path (stats, cache, recorder).
    pub fn engine(&self) -> &QaEngine {
        &self.shared.engine
    }

    /// Begins graceful shutdown: stop admitting, finish every admitted
    /// question, then close sockets. Non-blocking; pair with
    /// [`QaServer::join`].
    pub fn drain(&self) {
        self.shared.drain_flag.store(true, Ordering::SeqCst);
    }

    /// Drains (if not already draining) and blocks until the service
    /// has fully stopped, handing the warehouse pipeline back. On a
    /// replicating primary the drain sequence flushes connected
    /// standbys first, so a drain-handoff promotion loses nothing.
    pub fn join(self) -> Option<IntegrationPipeline> {
        self.drain();
        self.serve()
    }

    /// Stops the service *abruptly*: no queue grace, no replication
    /// flush — the closest a test harness gets to `kill -9` without a
    /// separate process. In-flight work is abandoned mid-commit;
    /// whatever the WAL made durable (and whatever standbys already
    /// applied) is the surviving truth. Failover experiments crash
    /// primaries with this.
    pub fn kill(mut self) -> Option<IntegrationPipeline> {
        self.shared.killed.store(true, Ordering::SeqCst);
        if let Some(state) = &self.shared.repl {
            // Stop replication first so workers blocked in a quorum
            // wait wake immediately instead of timing out.
            state.shutdown();
        }
        self.shared.drain_flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        relock(&self.shared.pipeline).take()
    }

    /// Blocks until the service is stopped *by someone else* — a wire
    /// `drain` request or a [`QaServer::drain`] call from another
    /// thread — then hands the pipeline back. Unlike
    /// [`QaServer::join`] this does not initiate the drain itself, so
    /// it is the entry point for running as a long-lived server
    /// process (the REPL's `:serve` command uses it).
    pub fn serve(mut self) -> Option<IntegrationPipeline> {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        relock(&self.shared.pipeline).take()
    }
}

impl Drop for QaServer {
    fn drop(&mut self) {
        self.drain();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.drain_flag.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = shared.next_client.fetch_add(1, Ordering::SeqCst);
                match stream.try_clone() {
                    Ok(write_half) => {
                        relock(&shared.writers).insert(client, Arc::new(Mutex::new(write_half)));
                        shared.set_clients_gauge();
                        let shared2 = Arc::clone(shared);
                        let handle =
                            std::thread::spawn(move || connection_loop(&shared2, client, stream));
                        relock(&shared.conn_threads).push(handle);
                    }
                    Err(_) => drop(stream),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(listener); // no new connections from here on

    // Drain sequence: refuse new admissions, let every admitted job
    // finish (feedback transactions commit or roll back inside the
    // jobs themselves), stop the workers, wind down replication, then
    // close client sockets. A kill() skips every grace period.
    let killed = shared.killed.load(Ordering::SeqCst);
    shared.queue.begin_drain();
    if !killed {
        let _idle = shared.queue.await_idle(shared.cfg.drain_grace);
    }
    shared.queue.shutdown();
    for handle in relock(&shared.worker_threads).drain(..) {
        let _ = handle.join();
    }
    if let Some(state) = &shared.repl {
        if !killed {
            // Drain-handoff: give connected standbys one ack_timeout
            // to confirm everything shipped, so promoting one of them
            // immediately afterwards loses nothing.
            state.flush(state.cfg.ack_timeout);
        }
        state.shutdown();
        state.join_threads();
    }
    for (_client, writer) in relock(&shared.writers).drain() {
        let _ = relock(&writer).shutdown(Shutdown::Both);
    }
    shared.registry.gauge(names::SERVER_CLIENTS).set(0);
    for handle in relock(&shared.conn_threads).drain(..) {
        let _ = handle.join();
    }
}

fn connection_loop(shared: &Arc<Shared>, client: u64, stream: TcpStream) {
    // A hung (or slow-loris) client must not pin this thread or stall
    // the drain sequence's connection join: reads carry a deadline, and
    // a read that times out before a full request line arrives breaks
    // the loop and disconnects the client (counted, so operators can
    // tell timeouts from ordinary hangups).
    let _ = stream.set_read_timeout(shared.cfg.read_timeout);
    let mut bucket = TokenBucket::new(
        shared.cfg.rate_burst,
        shared.cfg.rate_per_sec,
        Instant::now(),
    );
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                shared.counter(names::SERVER_DISCONNECTS_TIMEOUT);
                break;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.counter(names::SERVER_REQUESTS);
        let request: Request = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                shared.counter(names::SERVER_PROTOCOL_ERRORS);
                let err = ProtocolError::Malformed(e.to_string());
                shared.respond(client, &Response::error(0, err.to_string()));
                continue;
            }
        };
        let command = match request.validate(shared.cfg.max_batch) {
            Ok(command) => command,
            Err(err) => {
                shared.counter(names::SERVER_PROTOCOL_ERRORS);
                shared.respond(client, &Response::error(request.id, err.to_string()));
                continue;
            }
        };
        // Per-request span covering the admission decision; the
        // engine's own `question` spans cover worker execution. (No
        // nesting: workers run on their own threads.)
        let label = format!("client {client} req {} {}", request.id, request.kind);
        let _span = dwqa_obs::observe(
            Some(Arc::clone(&shared.registry)),
            Some(shared.engine.tracer()),
            "request",
            &label,
        );
        match command {
            Command::Stats => {
                shared.respond(client, &Response::stats(request.id, shared.service_stats()));
            }
            Command::Replicas => {
                shared.respond(
                    client,
                    &Response::replicas(request.id, shared.replicas_report()),
                );
            }
            Command::Promote => {
                shared.respond(client, &promote_response(shared, request.id));
            }
            Command::Drain => {
                shared.respond(client, &Response::ack(request.id));
                shared.drain_flag.store(true, Ordering::SeqCst);
            }
            Command::Ask {
                question,
                deadline_ms,
            } => {
                let work = Work::Ask { question };
                admit(shared, client, &mut bucket, request.id, work, deadline_ms);
            }
            Command::Batch {
                questions,
                deadline_ms,
            } => {
                let work = Work::Batch { questions };
                admit(shared, client, &mut bucket, request.id, work, deadline_ms);
            }
            Command::Feedback { questions } => {
                // A standby owns no write path: refuse before admission
                // with the primary's address (learned from heartbeats)
                // so clients can redirect instead of retrying here.
                if let Some(state) = &shared.repl {
                    if state.role() != Role::Primary {
                        let redirect = relock(&state.primary_addr).clone();
                        shared.respond(client, &Response::not_primary(request.id, redirect));
                        continue;
                    }
                }
                let work = Work::Feedback { questions };
                admit(shared, client, &mut bucket, request.id, work, None);
            }
        }
    }
    relock(&shared.writers).remove(&client);
    shared.set_clients_gauge();
}

/// Handles a wire `promote`: flips a standby to primary (fencing the
/// old primary's generation), idempotent on an existing primary.
fn promote_response(shared: &Shared, request_id: u64) -> Response {
    let Some(state) = &shared.repl else {
        return Response::error(request_id, "replication not configured");
    };
    match state.role() {
        Role::Primary => {
            let mut response = Response::ack(request_id);
            response.detail = Some("already primary".to_owned());
            response
        }
        Role::Standby => match repl::promote(state, &shared.pipeline) {
            Ok(generation) => {
                let mut response = Response::ack(request_id);
                response.detail = Some(format!("promoted at generation {generation}"));
                response
            }
            Err(e) => Response::error(request_id, format!("promotion failed: {e}")),
        },
    }
}

/// The inline admission decision: drain check → token bucket → queue
/// capacity. Every refusal is an explicit `Busy` response.
fn admit(
    shared: &Shared,
    client: u64,
    bucket: &mut TokenBucket,
    request_id: u64,
    work: Work,
    deadline_ms: Option<u64>,
) {
    let now = Instant::now();
    if let Err(wait) = bucket.try_take(now) {
        shared.counter(names::SERVER_RATE_LIMITED);
        let hint = wait.as_millis().max(1) as u64;
        shared.respond(
            client,
            &Response::busy(request_id, BusyReason::RateLimited, Some(hint)),
        );
        return;
    }
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline)
        .map(|budget| now + budget);
    let job = Job {
        client,
        request_id,
        work,
        admitted_at: now,
        deadline,
    };
    match shared.queue.try_admit(job) {
        Ok(depth) => {
            shared.counter(names::SERVER_ADMITTED);
            shared
                .registry
                .gauge(names::SERVER_QUEUE_DEPTH)
                .set(depth as u64);
        }
        Err(AdmitError::AtCapacity { depth }) => {
            shared.counter(names::SERVER_SHED);
            // Scale the hint by how many queue slots each worker has
            // to clear before a retry could be admitted.
            let backlog = (depth / shared.cfg.workers).max(1) as u32;
            let hint = (shared.cfg.shed_retry_after * backlog).as_millis().max(1) as u64;
            shared.respond(
                client,
                &Response::busy(request_id, BusyReason::Shed, Some(hint)),
            );
        }
        Err(AdmitError::Draining) => {
            shared.counter(names::SERVER_DRAINED);
            shared.respond(
                client,
                &Response::busy(request_id, BusyReason::Draining, None),
            );
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.next() {
        shared
            .registry
            .histogram(names::SERVER_QUEUE_WAIT)
            .record(job.admitted_at.elapsed());
        shared
            .registry
            .gauge(names::SERVER_QUEUE_DEPTH)
            .set(shared.queue.depth() as u64);
        let response = execute(shared, &job);
        shared.respond(job.client, &response);
        shared
            .registry
            .histogram(names::SERVER_SERVICE_TIME)
            .record(job.admitted_at.elapsed());
        shared.counter(names::SERVER_COMPLETED);
        shared.queue.done();
    }
}

fn unpack(
    reports: Vec<QuestionReport>,
) -> (Vec<Vec<dwqa_qa::Answer>>, Vec<String>, Option<String>) {
    let outcomes = reports
        .iter()
        .map(|r| r.outcome.label().to_owned())
        .collect();
    let detail = reports
        .iter()
        .filter_map(|r| r.detail.clone())
        .collect::<Vec<_>>()
        .join("; ");
    let answers = reports.into_iter().map(|r| r.answers).collect();
    (answers, outcomes, (!detail.is_empty()).then_some(detail))
}

fn execute(shared: &Shared, job: &Job) -> Response {
    match &job.work {
        Work::Ask { question } => {
            let report = shared.engine.answer_checked_by(question, job.deadline);
            let (answers, outcomes, detail) = unpack(vec![report]);
            Response::answers(job.request_id, answers, outcomes, detail)
        }
        Work::Batch { questions } => {
            let reports: Vec<QuestionReport> = questions
                .iter()
                .map(|q| shared.engine.answer_checked_by(q, job.deadline))
                .collect();
            let (answers, outcomes, detail) = unpack(reports);
            Response::answers(job.request_id, answers, outcomes, detail)
        }
        Work::Feedback { questions } => {
            // The commit happens under the pipeline lock; the
            // replication wait happens *outside* it, so standby
            // catch-up never blocks other workers.
            let (response, target) = {
                let mut guard = relock(&shared.pipeline);
                match guard.as_mut() {
                    Some(pipeline) => {
                        let report = pipeline.submit_batch_with(&shared.engine, questions);
                        let outcomes = report
                            .outcomes
                            .iter()
                            .map(|o| o.label().to_owned())
                            .collect();
                        let mut response = Response::fed(
                            job.request_id,
                            report.answers,
                            outcomes,
                            report.feed.loaded as u64,
                            report.feed.duplicates_skipped as u64,
                        );
                        if report.rolled_back {
                            response.detail = Some("feed transaction rolled back".to_owned());
                        }
                        let target = pipeline.store().map(|s| s.next_seq());
                        (response, target)
                    }
                    None => (Response::error(job.request_id, "service stopped"), None),
                }
            };
            if let (Some(state), Some(target)) = (&shared.repl, target) {
                if response.is_ok() && !state.replication_wait(target) {
                    // Committed locally but not replicated to policy:
                    // answer busy so the client retries — the retry
                    // deduplicates, and sync mode thus never
                    // acknowledges what a failover could lose.
                    shared.counter(names::REPL_QUORUM_TIMEOUTS);
                    return Response::busy(job.request_id, BusyReason::ReplicationLag, Some(50));
                }
            }
            response
        }
    }
}
