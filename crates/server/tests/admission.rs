//! Admission-control invariants: the token bucket can never admit more
//! than `burst + rate · elapsed` requests no matter how takes are timed
//! (property test), and a flood of malformed frames is answered line by
//! line without killing the connection or starving other clients.

use dwqa_bench::{build_fixture, monthly_question, FixtureConfig};
use dwqa_common::Month;
use dwqa_corpus::PageStyle;
use dwqa_server::{QaClient, QaServer, ServerConfig, Status, TokenBucket};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any take schedule, the number of admitted requests never
    /// exceeds the bucket's mathematical ceiling `burst + rate·elapsed`
    /// — the invariant that makes per-client rate limiting a guarantee
    /// rather than a suggestion.
    #[test]
    fn prop_admissions_never_exceed_burst_plus_refill(
        burst in 1u32..16,
        rate_tenths in 1u64..500, // 0.1 ..= 49.9 tokens/sec
        deltas_ms in proptest::collection::vec(0u64..400, 1..60),
    ) {
        let rate = rate_tenths as f64 / 10.0;
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(burst, rate, t0);
        let mut now_ms = 0u64;
        let mut admitted = 0u64;
        for &delta in &deltas_ms {
            now_ms += delta;
            let now = t0 + Duration::from_millis(now_ms);
            if bucket.try_take(now).is_ok() {
                admitted += 1;
            }
            let ceiling = f64::from(burst) + rate * (now_ms as f64 / 1000.0);
            prop_assert!(
                admitted as f64 <= ceiling + 1e-6,
                "admitted {admitted} > burst {burst} + {rate}/s over {now_ms}ms"
            );
        }
    }

    /// A refusal's retry hint is honest: waiting exactly that long (plus
    /// a rounding microsecond) always yields a token.
    #[test]
    fn prop_retry_hints_are_sufficient(
        burst in 1u32..8,
        rate_tenths in 1u64..500,
        drains in 1u32..20,
    ) {
        let rate = rate_tenths as f64 / 10.0;
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(burst, rate, t0);
        for _ in 0..drains {
            let _ = bucket.try_take(t0);
        }
        if let Err(wait) = bucket.clone().try_take(t0) {
            let retry = t0 + wait + Duration::from_micros(1);
            prop_assert!(
                bucket.try_take(retry).is_ok(),
                "hint {wait:?} did not cover the deficit"
            );
        }
    }
}

/// ~200 garbage lines on a raw socket: every line is answered with a
/// typed error response on that same connection, the connection then
/// still serves a well-formed request, and a concurrent client's
/// question is never starved behind the flood.
#[test]
fn malformed_frame_flood_is_survivable_and_fair() {
    let fixture = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 2,
        ..FixtureConfig::default()
    })
    .pipeline;
    let cfg = ServerConfig::builder()
        .workers(1)
        .queue_capacity(16)
        .rate_burst(64)
        .rate_per_sec(100_000.0)
        .build()
        .unwrap();
    let server = QaServer::start(fixture, cfg, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // The polite client runs concurrently with the flood.
    let polite = std::thread::spawn(move || {
        let mut client = QaClient::connect(addr).unwrap();
        let q = monthly_question("Barcelona", 2004, Month::January);
        client.ask_with_retry(&q, 50).unwrap()
    });

    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let garbage: &[&str] = &[
        "this is not json",
        "{\"id\":",
        "{}",
        "[1,2,3]",
        "{\"id\":\"not a number\",\"kind\":\"ask\"}",
        "\u{0}\u{1}\u{2}binary noise",
        "{\"id\":5,\"kind\":\"no-such-kind\"}",
        "{\"id\":6,\"kind\":\"ask\"}", // ask without a question
    ];
    let floods = 200usize;
    for i in 0..floods {
        let line = garbage[i % garbage.len()];
        raw.write_all(line.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
    }
    raw.flush().unwrap();

    // Every flooded line comes back as a per-line error, in order, on
    // the same connection — none of them fatal.
    for i in 0..floods {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"Error\""),
            "flood line {i} got a non-error response: {line}"
        );
    }

    // The connection survives: a hand-written well-formed frame is
    // served normally.
    raw.write_all(b"{\"id\":1,\"kind\":\"stats\"}\n").unwrap();
    raw.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"Ok\""), "stats after flood failed: {line}");
    assert!(line.contains("\"protocol_errors\":"));
    drop(raw);

    // The flood never starved the concurrent client.
    let resp = polite.join().unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(!resp.answers.unwrap()[0].is_empty());

    let errors = server
        .metrics()
        .counter_value(dwqa_obs::names::SERVER_PROTOCOL_ERRORS);
    assert!(errors >= floods as u64, "counted {errors} protocol errors");
    assert!(server.join().is_some());
}
