//! Failover invariants (DESIGN.md §15, issue E18's test-sized twin):
//!
//! * **sync zero loss** — after chaos-ridden shipping completes, a
//!   standby's warehouse is byte-identical to the primary's for every
//!   acknowledged batch, and promotion fences the old primary out;
//! * **async bounded staleness** — a commit acknowledged under
//!   `async(budget)` never leaves a connected standby more than
//!   `budget` frames behind at the moment of the ack;
//! * **redirects** — a standby refuses `feedback` with a typed
//!   `NotPrimary` busy carrying the primary's advertised address.
//!
//! The chaos proptest drives the *wire machinery* (tap → seeded
//! `LinkFault` → `FrameStream` → replicated apply, with resubscribes
//! and seq dedup) in-process for determinism; the live tests run real
//! primaries and standbys over TCP sockets.

#![recursion_limit = "256"]

use dwqa_bench::{build_fixture, daily_questions, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::IntegrationPipeline;
use dwqa_corpus::PageStyle;
use dwqa_faults::{LinkAction, LinkFault, LinkPlan};
use dwqa_server::{
    BusyReason, QaClient, QaServer, ReplicasReport, ReplicationConfig, ReplicationMode,
    ServerConfig, Status,
};
use dwqa_store::{FrameKind, FrameStream};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dwqa-failover-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> IntegrationPipeline {
    build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 2,
        ..FixtureConfig::default()
    })
    .pipeline
}

fn questions() -> Vec<String> {
    let mut pool = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        pool.extend(
            daily_questions(city, 2004, Month::January)
                .into_iter()
                .take(2),
        );
    }
    pool
}

fn server_config() -> ServerConfig {
    ServerConfig::builder()
        .workers(2)
        .queue_capacity(64)
        .rate_burst(1024)
        .rate_per_sec(100_000.0)
        .build()
        .unwrap()
}

fn repl_config(mode: ReplicationMode) -> ReplicationConfig {
    ReplicationConfig::builder()
        .mode(mode)
        .heartbeat_interval(Duration::from_millis(20))
        .heartbeat_timeout(Duration::from_millis(150))
        .ack_timeout(Duration::from_secs(3))
        .reconnect_backoff(Duration::from_millis(10))
        .build()
        .unwrap()
}

fn report(client: &mut QaClient) -> ReplicasReport {
    client.replicas().unwrap().replicas.unwrap()
}

/// Polls the standby until its applied position reaches `target`.
fn await_catchup(client: &mut QaClient, target: u64, budget: Duration) -> ReplicasReport {
    let deadline = Instant::now() + budget;
    loop {
        let r = report(client);
        if r.next_seq >= target {
            return r;
        }
        assert!(
            Instant::now() < deadline,
            "standby stuck at {}/{target}",
            r.next_seq
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// In-memory chaos sim: tap → LinkFault wire → FrameStream → apply.
// ---------------------------------------------------------------------

/// Replays `shipped` frames into `standby` through a seeded chaos
/// link, with the follower's real recovery moves: resubscribe from the
/// applied offset on gaps/tears, dedup by frame seq. Returns the
/// number of sessions it took.
fn ship_through_chaos(
    shipped: &[Vec<u8>],
    standby: &mut IntegrationPipeline,
    fault: &mut LinkFault,
    target: u64,
) -> usize {
    let mut next: u64 = 0;
    let mut sessions = 0;
    while next < target {
        sessions += 1;
        assert!(
            sessions <= 10_000,
            "chaos never drained: stuck at {next}/{target}"
        );
        // "Subscribe": the primary's backlog from our applied offset.
        let mut stream = FrameStream::new(64 << 20);
        'session: for frame in shipped {
            let counter = u64::from_le_bytes(frame[20..28].try_into().unwrap());
            let is_checkpoint = frame[..4] != *b"DWA1";
            if !is_checkpoint && counter < next {
                continue; // already applied; backlog skips it
            }
            let decision = fault.decide(frame.len());
            let pushes: &[&[u8]] = match decision.action {
                LinkAction::Drop => &[],
                LinkAction::Tear(keep) => {
                    stream.push(&frame[..keep.min(frame.len())]);
                    break 'session; // torn tail ends the session
                }
                LinkAction::HalfOpen => break 'session,
                LinkAction::Deliver if decision.duplicate => &[frame, frame],
                LinkAction::Deliver => &[frame],
            };
            for bytes in pushes {
                stream.push(bytes);
            }
            loop {
                match stream.next() {
                    Ok(Some(got)) => match got.kind {
                        FrameKind::Record if got.counter == next => {
                            standby.apply_replicated_transaction(&got.payload).unwrap();
                            next += 1;
                        }
                        FrameKind::Record if got.counter < next => {} // dup: skip
                        FrameKind::Record => break 'session,          // gap: resubscribe
                        FrameKind::Checkpoint if got.counter > next => {
                            standby.apply_replicated_checkpoint(&got.payload).unwrap();
                            next = got.counter;
                        }
                        _ => {}
                    },
                    Ok(None) => break,
                    Err(_) => break 'session, // torn: resubscribe
                }
            }
        }
    }
    sessions
}

/// Body of `prop_sync_chaos_replication_is_lossless`.
fn check_sync_chaos_lossless(seed: u64, rate: f64, batch_count: usize) {
    let dir = scratch("chaos");
    let mut primary = fixture();
    let mut standby = fixture();
    primary.attach_store_at(&dir).unwrap();
    let shipped: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&shipped);
    primary
        .store_mut()
        .unwrap()
        .set_tap(Some(dwqa_store::FrameTap::new(move |_next, frame| {
            sink.lock().unwrap().push(frame.to_vec());
        })));

    let pool = questions();
    let mut batches = Vec::new();
    for q in pool.iter().take(batch_count) {
        let answers = primary.read_path().answer(q);
        let report = primary.apply_feedback(&answers);
        assert!(report.loaded > 0, "fixture question fed nothing: {q}");
        batches.push(answers);
    }
    let target = primary.store().unwrap().next_seq();
    assert_eq!(target, batch_count as u64);

    let mut fault = LinkFault::new(LinkPlan::chaos(seed, rate));
    let frames = shipped.lock().unwrap().clone();
    ship_through_chaos(&frames, &mut standby, &mut fault, target);

    // Zero acknowledged loss: byte-identical warehouse state.
    assert_eq!(standby.warehouse.to_json(), primary.warehouse.to_json());
    // And the dedup set came along: acked batches re-feed as no-ops,
    // so a client retrying into the promoted standby cannot double-add.
    for answers in &batches {
        let again = standby.apply_feedback(answers);
        assert_eq!(again.loaded, 0, "promoted standby re-loaded an acked batch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded link chaos (drops, tears, duplicates, half-opens) costs
    /// sessions, never correctness: the standby always converges to a
    /// byte-identical warehouse with the dedup set intact.
    #[test]
    fn prop_sync_chaos_replication_is_lossless(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.45,
        batch_count in 1usize..5,
    ) {
        check_sync_chaos_lossless(seed, rate, batch_count);
    }
}

// ---------------------------------------------------------------------
// Live servers over TCP.
// ---------------------------------------------------------------------

/// The tentpole, end to end: sync replication, standby catch-up,
/// primary crash, promotion, fenced generations, and zero loss of
/// every acknowledged batch.
#[test]
fn sync_failover_promotes_a_lossless_standby() {
    let primary_dir = scratch("live-p");
    let standby_dir = scratch("live-s");
    let mut primary_pipe = fixture();
    primary_pipe.attach_store_at(&primary_dir).unwrap();
    let mut standby_pipe = fixture();
    standby_pipe.attach_store_at(&standby_dir).unwrap();

    let primary = QaServer::start_primary(
        primary_pipe,
        server_config(),
        "127.0.0.1:0",
        "127.0.0.1:0",
        repl_config(ReplicationMode::Sync { quorum: 1 }),
    )
    .unwrap();
    let repl_addr = primary.replication_addr().unwrap();
    let standby = QaServer::start_standby(
        standby_pipe,
        server_config(),
        "127.0.0.1:0",
        &repl_addr.to_string(),
        repl_config(ReplicationMode::Sync { quorum: 1 }),
    )
    .unwrap();

    let mut client_p = QaClient::connect(primary.local_addr()).unwrap();
    let mut client_s = QaClient::connect(standby.local_addr()).unwrap();

    // Feed batches through the primary until each is acknowledged.
    let pool = questions();
    let mut acked = Vec::new();
    for q in pool.iter().take(3) {
        let batch = vec![q.clone()];
        let response = client_p.feedback_with_retry(&batch, 40).unwrap();
        assert_eq!(
            response.status,
            Status::Ok,
            "feedback refused: {response:?}"
        );
        acked.push(batch);
    }
    let primary_report = report(&mut client_p);
    assert_eq!(primary_report.role, "primary");
    assert_eq!(primary_report.mode, "sync(1)");
    assert!(primary_report.next_seq >= 3);

    // A standby refuses writes with a typed redirect.
    let standby_report = await_catchup(
        &mut client_s,
        primary_report.next_seq,
        Duration::from_secs(10),
    );
    assert_eq!(standby_report.role, "standby");
    let refused = client_s.feedback(&acked[0]).unwrap();
    assert_eq!(refused.status, Status::Busy);
    assert_eq!(refused.reason, Some(BusyReason::NotPrimary));
    // Heartbeats have long since delivered the primary's address.
    assert_eq!(refused.redirect, Some(primary.local_addr().to_string()));

    // Crash the primary (no drain, no flush) and promote the standby.
    let old_pipeline = primary.kill().expect("killed primary returns its pipeline");
    let old_generation = old_pipeline.store().unwrap().generation();
    let promoted = client_s.promote().unwrap();
    assert_eq!(promoted.status, Status::Ok, "promote failed: {promoted:?}");
    let detail = promoted.detail.unwrap_or_default();
    assert!(
        detail.contains("promoted at generation"),
        "unexpected promote detail: {detail}"
    );

    // The promoted standby is a primary now: reads and writes flow.
    let post = report(&mut client_s);
    assert_eq!(post.role, "primary");
    assert!(
        post.generation > old_generation,
        "promotion did not fence: {} <= {old_generation}",
        post.generation
    );
    let write = client_s
        .feedback_with_retry(std::slice::from_ref(&pool[3]), 40)
        .unwrap();
    assert_eq!(
        write.status,
        Status::Ok,
        "promoted standby refused: {write:?}"
    );

    // Zero acknowledged loss, proven by dedup: hand the pipeline back
    // and re-feed every acknowledged batch — all must be no-ops.
    client_s.drain().unwrap();
    let mut survivor = standby.serve().expect("drained standby returns pipeline");
    for batch in &acked {
        let answers = survivor.read_path().answer(&batch[0]);
        let again = survivor.apply_feedback(&answers);
        assert_eq!(again.loaded, 0, "acknowledged batch lost: {:?}", batch);
    }
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

/// Async mode: every acknowledged commit leaves the connected standby
/// within the staleness budget at the moment of the ack.
#[test]
fn async_staleness_stays_within_budget() {
    let primary_dir = scratch("async-p");
    let mut primary_pipe = fixture();
    primary_pipe.attach_store_at(&primary_dir).unwrap();
    let standby_pipe = fixture();

    let budget = 2u64;
    let primary = QaServer::start_primary(
        primary_pipe,
        server_config(),
        "127.0.0.1:0",
        "127.0.0.1:0",
        repl_config(ReplicationMode::Async {
            staleness_budget: budget,
        }),
    )
    .unwrap();
    let repl_addr = primary.replication_addr().unwrap();
    let standby = QaServer::start_standby(
        standby_pipe,
        server_config(),
        "127.0.0.1:0",
        &repl_addr.to_string(),
        repl_config(ReplicationMode::Async {
            staleness_budget: budget,
        }),
    )
    .unwrap();
    let mut client_p = QaClient::connect(primary.local_addr()).unwrap();
    let mut client_s = QaClient::connect(standby.local_addr()).unwrap();

    // Wait for the standby to subscribe so the budget binds.
    let deadline = Instant::now() + Duration::from_secs(10);
    while report(&mut client_p).peers.is_empty() {
        assert!(Instant::now() < deadline, "standby never subscribed");
        std::thread::sleep(Duration::from_millis(10));
    }

    for q in questions().iter().take(4) {
        let response = client_p
            .feedback_with_retry(std::slice::from_ref(q), 40)
            .unwrap();
        assert_eq!(response.status, Status::Ok);
        // Sequential feeding: nothing ships between the ack and this
        // probe, so the policy's bound is still visible.
        let r = report(&mut client_p);
        for peer in &r.peers {
            if peer.connected {
                assert!(
                    peer.lag <= budget,
                    "acked while {} frames behind (budget {budget})",
                    peer.lag
                );
            }
        }
    }

    let target = report(&mut client_p).next_seq;
    await_catchup(&mut client_s, target, Duration::from_secs(10));
    drop(client_p);
    drop(client_s);
    let _ = primary.join();
    let _ = standby.join();
    let _ = std::fs::remove_dir_all(&primary_dir);
}

/// Sync mode with no standby connected: commits are refused with
/// `ReplicationLag` (committed locally, never acknowledged) — the
/// zero-acknowledged-loss guarantee in its purest form.
#[test]
fn sync_quorum_timeout_answers_replication_lag() {
    let primary_dir = scratch("lag-p");
    let mut primary_pipe = fixture();
    primary_pipe.attach_store_at(&primary_dir).unwrap();

    let mut cfg = repl_config(ReplicationMode::Sync { quorum: 1 });
    cfg.ack_timeout = Duration::from_millis(200);
    let primary = QaServer::start_primary(
        primary_pipe,
        server_config(),
        "127.0.0.1:0",
        "127.0.0.1:0",
        cfg,
    )
    .unwrap();
    let mut client = QaClient::connect(primary.local_addr()).unwrap();

    let q = questions().remove(0);
    let response = client.feedback(&[q]).unwrap();
    assert_eq!(response.status, Status::Busy);
    assert_eq!(response.reason, Some(BusyReason::ReplicationLag));
    assert!(response.retry_after_ms.is_some());

    drop(client);
    let _ = primary.kill();
    let _ = std::fs::remove_dir_all(&primary_dir);
}
