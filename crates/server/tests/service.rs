//! End-to-end service tests over real sockets: concurrency equivalence
//! with the batch engine, explicit backpressure, deadline propagation,
//! and the drain guarantee (every admitted question completes; feedback
//! transactions never half-apply).

use dwqa_bench::{build_fixture, daily_questions, monthly_question, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::IntegrationPipeline;
use dwqa_corpus::PageStyle;
use dwqa_engine::QaEngine;
use dwqa_qa::Answer;
use dwqa_server::{BusyReason, QaClient, QaServer, Request, ServerConfig, Status};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

fn small_fixture() -> IntegrationPipeline {
    build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 4,
        ..FixtureConfig::default()
    })
    .pipeline
}

fn question_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        pool.extend(
            daily_questions(city, 2004, Month::January)
                .into_iter()
                .take(4),
        );
        pool.push(monthly_question(city, 2004, Month::January));
    }
    pool
}

/// One shared ask-only server plus the reference answers a sequential
/// engine produces over an identical fixture. Reused across proptest
/// cases: `ask` never mutates the warehouse, so the server is as
/// deterministic on the hundredth case as on the first.
struct SharedServer {
    addr: SocketAddr,
    expected: BTreeMap<String, Vec<Answer>>,
}

fn shared_server() -> &'static SharedServer {
    static SHARED: OnceLock<SharedServer> = OnceLock::new();
    SHARED.get_or_init(|| {
        let reference = small_fixture();
        let engine = QaEngine::new(&reference).with_workers(1);
        let expected = question_pool()
            .into_iter()
            .map(|q| {
                let answers = engine.answer(&q);
                (q, answers)
            })
            .collect();
        let cfg = ServerConfig::builder()
            .workers(3)
            .queue_capacity(64)
            .rate_burst(1024)
            .rate_per_sec(100_000.0)
            .build()
            .unwrap();
        let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // Keep the service alive for the whole test binary.
        std::mem::forget(server);
        SharedServer { addr, expected }
    })
}

fn permutation(n: usize, seed: u64) -> Vec<usize> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any interleaving of N concurrent clients asking a permuted
    /// subset of the pool yields exactly the answers one engine
    /// produces for the same questions: admission order, client count
    /// and round-robin scheduling are invisible in the results.
    #[test]
    fn concurrent_clients_see_single_engine_answers(
        subset in proptest::sample::subsequence(question_pool(), 1..=9),
        clients in 2usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let shared = shared_server();
        let order = permutation(subset.len(), seed);
        let questions: Vec<String> = order.iter().map(|&i| subset[i].clone()).collect();
        // Deal the permuted questions round-robin across the clients.
        let mut per_client: Vec<Vec<String>> = vec![Vec::new(); clients];
        for (i, q) in questions.iter().enumerate() {
            per_client[i % clients].push(q.clone());
        }
        let results: Vec<(String, Vec<Answer>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_client
                .into_iter()
                .map(|mine| {
                    scope.spawn(move || {
                        let mut client = QaClient::connect(shared.addr).unwrap();
                        mine.into_iter()
                            .map(|q| {
                                let resp = client.ask_with_retry(&q, 50).unwrap();
                                assert_eq!(resp.status, Status::Ok, "{resp:?}");
                                let answers = resp.answers.unwrap().remove(0);
                                (q, answers)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        prop_assert_eq!(results.len(), questions.len());
        for (question, answers) in results {
            prop_assert_eq!(
                &answers,
                shared.expected.get(&question).unwrap(),
                "answers diverged for {}",
                question
            );
        }
    }
}

/// A full admission queue sheds with an explicit `busy` + retry hint:
/// nothing is silently dropped, nothing queues without bound.
#[test]
fn saturation_sheds_with_busy_and_retry_hint() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .queue_capacity(1)
        .rate_burst(1024)
        .rate_per_sec(100_000.0)
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();

    // One pipelined burst of distinct (uncacheable) questions, far
    // faster than one worker can execute them.
    let questions = question_pool();
    for (i, q) in questions.iter().enumerate() {
        client.send(&Request::ask(i as u64 + 1, q)).unwrap();
    }
    let mut ok = 0;
    let mut shed = 0;
    for _ in 0..questions.len() {
        let resp = client.recv().unwrap();
        match resp.status {
            Status::Ok => ok += 1,
            Status::Busy => {
                assert_eq!(resp.reason, Some(BusyReason::Shed));
                assert!(resp.retry_after_ms.unwrap() >= 1);
                shed += 1;
            }
            Status::Error => panic!("unexpected error: {resp:?}"),
        }
    }
    // Every request was answered one way or the other, and the burst
    // overwhelmed a capacity-1 queue.
    assert_eq!(ok + shed, questions.len());
    assert!(ok >= 1, "at least the first request is admitted");
    assert!(shed >= 1, "a capacity-1 queue must shed under a burst");

    let shed_counter = server.metrics().counter_value(dwqa_obs::names::SERVER_SHED);
    assert_eq!(shed_counter, shed as u64);
    assert!(server.join().is_some());
}

/// An empty token bucket refuses with `RateLimited` and a hint sized
/// by the refill rate; other clients are unaffected.
#[test]
fn token_bucket_limits_one_client_without_starving_another() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .queue_capacity(16)
        .rate_burst(2)
        .rate_per_sec(0.5)
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let q = monthly_question("Barcelona", 2004, Month::January);

    let mut greedy = QaClient::connect(server.local_addr()).unwrap();
    assert_eq!(greedy.ask(&q).unwrap().status, Status::Ok);
    assert_eq!(greedy.ask(&q).unwrap().status, Status::Ok);
    let third = greedy.ask(&q).unwrap();
    assert_eq!(third.status, Status::Busy);
    assert_eq!(third.reason, Some(BusyReason::RateLimited));
    // Half a token per second: the missing token is ~2s away.
    assert!(third.retry_after_ms.unwrap() >= 1_000);

    // A fresh client has its own bucket and sails through.
    let mut polite = QaClient::connect(server.local_addr()).unwrap();
    assert_eq!(polite.ask(&q).unwrap().status, Status::Ok);
    assert!(server.join().is_some());
}

/// `deadline_ms` rides from the request into the engine: a zero budget
/// expires before the pipeline runs and comes back `timed-out`.
#[test]
fn request_deadlines_propagate_into_the_engine() {
    let cfg = ServerConfig::builder().workers(1).build().unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();
    let q = monthly_question("Madrid", 2004, Month::January);

    let resp = client.ask_with_deadline(&q, 0).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.outcomes.unwrap(), vec!["timed-out".to_owned()]);
    assert!(resp.answers.unwrap()[0].is_empty());

    // Without the zero budget the same question answers cleanly.
    let resp = client.ask(&q).unwrap();
    assert_eq!(resp.outcomes.unwrap(), vec!["ok".to_owned()]);
    assert!(!resp.answers.unwrap()[0].is_empty());

    // The clean answer landed in the (sharded) answer cache, and the
    // stats verb reports its entry count from the lock-free counters.
    let stats = client.stats().unwrap().stats.unwrap();
    assert!(stats.cache_entries >= 1, "answer should be cached");
    assert!(server.join().is_some());
}

/// Malformed and invalid lines get `error` responses naming the
/// problem; the connection survives and keeps serving.
#[test]
fn protocol_errors_are_reported_not_fatal() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .max_batch(2)
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();

    // Raw garbage on the socket.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    drop(raw.write_all(b"this is not json\n"));
    drop(raw);

    let resp = client
        .request(&Request {
            id: 7,
            kind: "sing".to_owned(),
            question: None,
            questions: None,
            deadline_ms: None,
        })
        .unwrap();
    assert_eq!(resp.status, Status::Error);
    assert!(resp.detail.unwrap().contains("unknown request kind"));

    let too_big: Vec<String> = (0..3).map(|i| format!("q{i}")).collect();
    let resp = client.batch(&too_big).unwrap();
    assert_eq!(resp.status, Status::Error);
    assert!(resp.detail.unwrap().contains("exceeds the limit"));

    // Still serving: stats works on the same connection.
    let resp = client.stats().unwrap();
    assert_eq!(resp.status, Status::Ok);
    let stats = resp.stats.unwrap();
    assert!(stats.protocol_errors >= 2);
    assert!(server.join().is_some());
}

/// The drain guarantee: every admitted feedback transaction commits
/// before sockets close, the drained warehouse holds exactly the rows
/// the responses reported, and post-drain work is refused, not lost
/// silently.
#[test]
fn drain_completes_every_admitted_question_and_returns_the_warehouse() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .queue_capacity(16)
        .rate_burst(64)
        .rate_per_sec(100_000.0)
        .drain_grace(Duration::from_secs(30))
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();

    // Pipeline four feedback transactions and the drain behind them,
    // in one burst: the drain must not cut off the admitted four.
    let batches: Vec<Vec<String>> = vec![
        daily_questions("Barcelona", 2004, Month::January)[..3].to_vec(),
        daily_questions("Madrid", 2004, Month::January)[..3].to_vec(),
        daily_questions("New York", 2004, Month::January)[..2].to_vec(),
        vec![monthly_question("Barcelona", 2004, Month::January)],
    ];
    for (i, batch) in batches.iter().enumerate() {
        client
            .send(&Request::feedback(i as u64 + 1, batch))
            .unwrap();
    }
    client.send(&Request::drain(99)).unwrap();

    // Five responses arrive (in any order — the ack is written by the
    // connection thread, the transactions by the worker).
    let mut loaded_total = 0u64;
    let mut seen = Vec::new();
    for _ in 0..5 {
        let resp = client.recv().unwrap();
        seen.push(resp.id);
        if resp.id == 99 {
            assert_eq!(resp.status, Status::Ok);
        } else {
            assert_eq!(resp.status, Status::Ok, "admitted feedback lost: {resp:?}");
            loaded_total += resp.loaded.unwrap();
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3, 4, 99]);
    assert!(loaded_total > 0);

    // The server hands the pipeline back, and the warehouse holds
    // exactly what the committed transactions reported.
    let pipeline = server.join().unwrap();
    assert_eq!(
        pipeline.warehouse.fact("City Weather").unwrap().len(),
        loaded_total as usize
    );
}

/// New work arriving while a drain is in progress is refused with an
/// explicit `Draining` busy, never silently dropped.
#[test]
fn work_during_drain_is_refused_with_draining() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .queue_capacity(16)
        .rate_burst(64)
        .rate_per_sec(100_000.0)
        .cache_capacity(0) // recompute every question: keeps the worker busy
        .drain_grace(Duration::from_secs(30))
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = QaClient::connect(addr).unwrap();

    // Occupy the single worker with a long uncached batch, wait until
    // it is actually admitted, then start the drain underneath it.
    let slow: Vec<String> = std::iter::repeat(question_pool())
        .take(4)
        .flatten()
        .collect();
    client.send(&Request::batch(1, &slow)).unwrap();
    let admitted = || {
        server
            .metrics()
            .counter_value(dwqa_obs::names::SERVER_ADMITTED)
    };
    while admitted() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.drain();
    // Give the accept loop a beat to flip the queue into draining.
    std::thread::sleep(Duration::from_millis(20));

    // The already-admitted batch completes; fresh work is refused
    // while it runs.
    client.send(&Request::ask(2, &slow[0])).unwrap();
    let mut by_id = BTreeMap::new();
    for _ in 0..2 {
        let resp = client.recv().unwrap();
        by_id.insert(resp.id, resp);
    }
    assert_eq!(by_id[&1].status, Status::Ok, "admitted batch must finish");
    let refused = &by_id[&2];
    assert_eq!(refused.status, Status::Busy);
    assert_eq!(refused.reason, Some(BusyReason::Draining));

    assert!(server.join().is_some());
    // And the listener is gone.
    assert!(
        std::net::TcpStream::connect(addr).is_err() || {
            // Some platforms accept then reset; either way no service.
            let mut c = QaClient::connect(addr).unwrap();
            c.stats().is_err()
        }
    );
}

/// The read deadline drops idle (or hung) clients: the connection
/// thread exits, the client gauge falls back to zero, and a drain is
/// never stalled by a socket that will not speak.
#[test]
fn idle_clients_are_disconnected_by_the_read_deadline() {
    let cfg = ServerConfig::builder()
        .workers(1)
        .read_timeout(Some(Duration::from_millis(100)))
        .build()
        .unwrap();
    let server = QaServer::start(small_fixture(), cfg, "127.0.0.1:0").unwrap();
    let mut idle = QaClient::connect(server.local_addr()).unwrap();
    let q = monthly_question("Barcelona", 2004, Month::January);
    assert_eq!(idle.ask(&q).unwrap().status, Status::Ok);

    // Go silent. The server must hang up on its own.
    let clients = || {
        server
            .metrics()
            .gauge_value(dwqa_obs::names::SERVER_CLIENTS)
    };
    assert_eq!(clients(), 1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while clients() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(clients(), 0, "idle connection was not disconnected");
    // A fresh client is served normally afterwards.
    let mut fresh = QaClient::connect(server.local_addr()).unwrap();
    assert_eq!(fresh.ask(&q).unwrap().status, Status::Ok);
    assert!(server.join().is_some());
}

/// Durability across a restart: feedback acknowledged `ok` by a
/// durable service survives losing the process — a fresh pipeline
/// recovering from the same store directory holds the fed rows and
/// treats a replayed feedback request as pure duplicates.
#[test]
fn durable_feedback_survives_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("dwqa-service-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut pipeline = small_fixture();
    pipeline.attach_store_at(&dir).unwrap();
    let cfg = ServerConfig::builder().workers(2).build().unwrap();
    let server = QaServer::start(pipeline, cfg.clone(), "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();
    let questions = vec![monthly_question("Barcelona", 2004, Month::January)];
    let resp = client.feedback(&questions).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(resp.loaded.unwrap() > 0);
    let stats = client.stats().unwrap().stats.unwrap();
    assert!(stats.durable, "service should report the attached store");
    assert!(stats.wal_appends >= 1, "the commit was WAL-logged");
    let fed_json = server.join().unwrap().warehouse.to_json();

    // "Crash": a brand-new process rebuilds the seed fixture and
    // recovers checkpoint + WAL from the store directory.
    let mut fresh = small_fixture();
    let report = fresh.attach_store_at(&dir).unwrap();
    assert!(report.checkpoint_loaded);
    assert_eq!(report.transactions_replayed, 1);
    assert_eq!(
        fresh.warehouse.to_json(),
        fed_json,
        "recovery reproduces state"
    );

    // The recovered service sees the same feedback as duplicates only.
    let server = QaServer::start(fresh, cfg, "127.0.0.1:0").unwrap();
    let mut client = QaClient::connect(server.local_addr()).unwrap();
    let resp = client.feedback(&questions).unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.loaded, Some(0));
    assert!(resp.duplicates.unwrap() > 0);
    assert!(server.join().is_some());
}
