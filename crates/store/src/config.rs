//! Durability tunables, built through a validating builder.
//!
//! Follows the workspace builder convention (DESIGN.md §6): setters
//! take raw values, [`StoreConfigBuilder::build`] validates every range
//! and returns `Result<StoreConfig, ConfigError>` naming the offending
//! field. Nothing is silently clamped.

use dwqa_common::ConfigError;

/// When the WAL writer calls `fsync` (really `fdatasync` via
/// `File::sync_data`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append. The committed-transaction-prefix
    /// recovery invariant holds even across power loss; slowest.
    Always,
    /// Fsync after every N appends. A crash can lose at most the last
    /// N−1 acknowledged transactions (recovery still never yields a
    /// partial one).
    EveryN(u32),
    /// Never fsync from the append path; the OS flushes when it
    /// pleases. Fastest, weakest: a crash loses whatever the kernel
    /// had not written back.
    Never,
}

/// Tunables for [`crate::FeedbackStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Durability/latency trade-off for WAL appends.
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint cadence: after this many WAL records the store
    /// reports [`crate::FeedbackStore::checkpoint_due`] so the owner
    /// can serialize a snapshot and truncate the log. `None` disables
    /// the hint (checkpoints still work on demand).
    pub checkpoint_every: Option<u64>,
    /// Per-record payload ceiling; appends beyond it are rejected
    /// without writing. Also bounds how far recovery will trust a
    /// length prefix when hunting for a torn tail.
    pub max_record_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: Some(256),
            max_record_bytes: 16 << 20,
        }
    }
}

impl StoreConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder {
            config: StoreConfig::default(),
        }
    }

    /// Validates every knob, naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let FsyncPolicy::EveryN(0) = self.fsync {
            return Err(ConfigError::new(
                "fsync",
                "EveryN interval must be at least 1",
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(ConfigError::new(
                "checkpoint_every",
                "must be at least 1 record (or None to disable)",
            ));
        }
        if self.max_record_bytes == 0 {
            return Err(ConfigError::new("max_record_bytes", "must be at least 1"));
        }
        Ok(())
    }
}

/// Builder for [`StoreConfig`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct StoreConfigBuilder {
    config: StoreConfig,
}

impl StoreConfigBuilder {
    /// Fsync policy for WAL appends.
    pub fn fsync(mut self, policy: FsyncPolicy) -> StoreConfigBuilder {
        self.config.fsync = policy;
        self
    }

    /// Auto-checkpoint cadence in WAL records (`None` disables).
    pub fn checkpoint_every(mut self, every: Option<u64>) -> StoreConfigBuilder {
        self.config.checkpoint_every = every;
        self
    }

    /// Per-record payload ceiling in bytes.
    pub fn max_record_bytes(mut self, max: usize) -> StoreConfigBuilder {
        self.config.max_record_bytes = max;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<StoreConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(StoreConfig::builder().build().is_ok());
    }

    #[test]
    fn degenerate_knobs_are_rejected_at_build_naming_the_field() {
        let cases: [(&str, StoreConfigBuilder); 3] = [
            (
                "fsync",
                StoreConfig::builder().fsync(FsyncPolicy::EveryN(0)),
            ),
            (
                "checkpoint_every",
                StoreConfig::builder().checkpoint_every(Some(0)),
            ),
            (
                "max_record_bytes",
                StoreConfig::builder().max_record_bytes(0),
            ),
        ];
        for (field, builder) in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.field, field, "{err}");
        }
    }

    #[test]
    fn disabled_checkpoint_cadence_is_legal() {
        let cfg = StoreConfig::builder()
            .checkpoint_every(None)
            .fsync(FsyncPolicy::Never)
            .build()
            .unwrap();
        assert_eq!(cfg.checkpoint_every, None);
        assert_eq!(cfg.fsync, FsyncPolicy::Never);
    }
}
