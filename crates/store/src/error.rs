//! Typed failures of the durability layer.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Everything that can go wrong opening, appending to, or
/// checkpointing a [`crate::FeedbackStore`].
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level file operation failed. `context` names the step
    /// (e.g. `"append wal record"`).
    Io {
        /// Which store operation was underway.
        context: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The checkpoint file exists but fails validation (bad magic,
    /// implausible length, CRC mismatch). The store refuses to open
    /// rather than half-load: restore from a trusted snapshot instead.
    CorruptCheckpoint(String),
    /// An append payload exceeds `StoreConfig::max_record_bytes`.
    /// Nothing was written; the store stays usable.
    TooLarge {
        /// Offered payload size in bytes.
        len: usize,
        /// Configured per-record ceiling.
        max: usize,
    },
    /// An injected torn write fired (or a real write failed partway):
    /// the on-disk log may end mid-record and the store is now
    /// *wedged* — it refuses further appends, modelling a process that
    /// died at that point. Reopen the store to recover.
    Torn(&'static str),
    /// The store was wedged by an earlier torn write and cannot accept
    /// work until it is reopened (recovered).
    Wedged,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => {
                write!(f, "store io failure ({context}): {source}")
            }
            StoreError::CorruptCheckpoint(why) => {
                write!(
                    f,
                    "checkpoint file is corrupt, refusing to half-load: {why}"
                )
            }
            StoreError::TooLarge { len, max } => {
                write!(
                    f,
                    "record of {len} bytes exceeds the {max}-byte record ceiling"
                )
            }
            StoreError::Torn(kind) => {
                write!(f, "torn write ({kind}); store is wedged until reopened")
            }
            StoreError::Wedged => {
                write!(
                    f,
                    "store is wedged by an earlier torn write; reopen to recover"
                )
            }
        }
    }
}

impl StdError for StoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Wraps an [`io::Error`] with the store step that hit it.
pub(crate) fn io_err(context: &'static str) -> impl FnOnce(io::Error) -> StoreError {
    move |source| StoreError::Io { context, source }
}
