//! # dwqa-store — durable feedback for the QA ⇄ DW pipeline
//!
//! The paper's step-5 feedback loop only pays off if enrichment
//! *persists*: a warehouse member fed in one session must still be
//! there after a crash. This crate gives the pipeline that guarantee
//! with two files in a store directory:
//!
//! * **`feedback.wal`** — an append-only write-ahead log of committed
//!   feedback transactions. Every record is length-prefixed,
//!   CRC-32-checksummed and generation-stamped, so recovery can tell a
//!   committed record from a torn tail byte-for-byte.
//! * **`checkpoint.bin`** — a periodic serialized `WarehouseSnapshot`
//!   (opaque bytes to this crate) written tmp-then-rename; a successful
//!   checkpoint bumps the generation and truncates the log.
//!
//! [`FeedbackStore::open`] is the recovery path: it loads the
//! checkpoint (rejecting a corrupt one outright — the same
//! reject-don't-half-load stance as snapshot restore), then replays the
//! WAL suffix, stopping at the first invalid record and truncating the
//! torn tail instead of guessing. Stale records from an older
//! generation (a crash between checkpoint rename and log truncation)
//! are skipped; duplicated records (a crash after a retried write) are
//! deduplicated by sequence number.
//!
//! Durability cost is a policy knob: [`FsyncPolicy::Always`] fsyncs
//! every append (the committed-prefix invariant holds across power
//! loss), `EveryN` amortizes, `Never` leaves flushing to the OS.
//!
//! The [`TornWriter`] fault layer (seeded, in the spirit of
//! `dwqa-faults::FaultInjector`) injects short writes, bit flips,
//! duplicated records and failed fsyncs so the recovery tests and the
//! `exp_crash` experiment can prove the invariant instead of assuming
//! it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod error;
pub mod store;
pub mod stream;
pub mod torn;
mod wal;

pub use config::{FsyncPolicy, StoreConfig, StoreConfigBuilder};
pub use error::StoreError;
pub use store::{FeedbackStore, FrameTap, Recovery, WalRecord};
pub use stream::{Frame, FrameKind, FrameStream, FrameStreamError};
pub use torn::{TornDecision, TornFault, TornPlan, TornWriter};
