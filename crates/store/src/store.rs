//! The feedback store proper: open-with-recovery, append, checkpoint.
//!
//! A store directory holds two files:
//!
//! * `feedback.wal` — the append-only record log;
//! * `checkpoint.bin` — the latest snapshot, written `checkpoint.tmp`
//!   → fsync → atomic rename so a crash mid-checkpoint can never
//!   destroy the previous one.
//!
//! Payloads are opaque bytes to this crate — `dwqa-core` serializes
//! its transactions and `WarehouseSnapshot`s into them, keeping the
//! dependency arrow pointing the right way.

use crate::config::{FsyncPolicy, StoreConfig};
use crate::error::{io_err, StoreError};
use crate::torn::{TornDecision, TornFault, TornPlan, TornWriter};
use crate::wal;
use dwqa_obs::names;
use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const WAL_FILE: &str = "feedback.wal";
const WAL_TMP: &str = "feedback.wal.tmp";
const CHECKPOINT_FILE: &str = "checkpoint.bin";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// One committed WAL record as recovery hands it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (never reused, even across
    /// checkpoints).
    pub seq: u64,
    /// The opaque transaction payload exactly as appended.
    pub payload: Vec<u8>,
}

/// What [`FeedbackStore::open`] found and repaired on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The checkpoint payload, if a checkpoint file existed.
    pub checkpoint: Option<Vec<u8>>,
    /// Generation the store resumed at.
    pub generation: u64,
    /// Committed current-generation WAL records in sequence order —
    /// the suffix to replay on top of the checkpoint.
    pub records: Vec<WalRecord>,
    /// Bytes truncated from the log tail as torn (unfinished or
    /// corrupted writes).
    pub torn_bytes: u64,
    /// Valid records skipped because they predate the checkpoint
    /// generation (crash between checkpoint rename and log truncate).
    pub stale_skipped: u64,
    /// Valid records skipped as duplicated sequence numbers.
    pub duplicates_skipped: u64,
    /// True when the on-disk log was rewritten to just the live
    /// records (any of the three counts above was non-zero).
    pub compacted: bool,
}

/// Observer invoked with every durable frame — record appends and
/// checkpoint bodies — *after* the bytes are safely on disk, in the
/// exact wire encoding. This is the replication shipping hook: a
/// primary's hub registers a tap and forwards the frames verbatim to
/// its standbys, so only committed frames ever leave the process.
pub struct FrameTap(TapFn);

/// The boxed `(next_seq, frame_bytes)` callback a [`FrameTap`] wraps.
type TapFn = Box<dyn FnMut(u64, &[u8]) + Send>;

impl FrameTap {
    /// Wraps a callback receiving `(next_seq, frame_bytes)` — the
    /// store's sequence position *after* the frame (a record's
    /// `seq + 1`, or the `next_seq` a checkpoint covers up to), so a
    /// replication hub can track its shipped position uniformly; the
    /// frame kind is self-described by the frame's magic.
    pub fn new(tap: impl FnMut(u64, &[u8]) + Send + 'static) -> FrameTap {
        FrameTap(Box::new(tap))
    }
}

impl std::fmt::Debug for FrameTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FrameTap(..)")
    }
}

/// Append-only durability for committed feedback transactions; see the
/// crate docs for the format and invariants.
#[derive(Debug)]
pub struct FeedbackStore {
    dir: PathBuf,
    config: StoreConfig,
    wal: File,
    wal_len: u64,
    generation: u64,
    next_seq: u64,
    wal_records: u64,
    unsynced: u32,
    wedged: bool,
    torn: Option<TornWriter>,
    tap: Option<FrameTap>,
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err("fsync store directory"))
}

fn remove_if_present(path: &Path) -> Result<(), StoreError> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::Io {
            context: "remove leftover tmp file",
            source: e,
        }),
    }
}

impl FeedbackStore {
    /// Opens (creating if absent) the store in `dir`, running recovery:
    /// load + validate the checkpoint, replay the committed WAL suffix,
    /// truncate any torn tail, skip stale generations, deduplicate
    /// repeated sequence numbers. A corrupt checkpoint is an error —
    /// the store refuses to half-load.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<(FeedbackStore, Recovery), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(io_err("create store directory"))?;
        remove_if_present(&dir.join(CHECKPOINT_TMP))?;
        remove_if_present(&dir.join(WAL_TMP))?;

        let (generation, ckpt_next_seq, checkpoint) = match fs::read(dir.join(CHECKPOINT_FILE)) {
            Ok(bytes) => {
                let (generation, next_seq, payload) =
                    wal::decode_checkpoint(&bytes).map_err(StoreError::CorruptCheckpoint)?;
                (generation, next_seq, Some(payload))
            }
            Err(e) if e.kind() == ErrorKind::NotFound => (0, 0, None),
            Err(e) => {
                return Err(StoreError::Io {
                    context: "read checkpoint",
                    source: e,
                })
            }
        };

        let wal_path = dir.join(WAL_FILE);
        let image = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(StoreError::Io {
                    context: "read wal",
                    source: e,
                })
            }
        };
        let decoded = wal::decode_wal(&image, generation, config.max_record_bytes);
        let compacted = decoded.needs_compaction();
        if compacted {
            // Rewrite the log as exactly the live records (tmp → fsync
            // → rename, so a crash mid-compaction keeps the old log,
            // which recovers identically next time).
            let mut clean = Vec::new();
            for record in &decoded.live {
                clean.extend(wal::encode_record(generation, record.seq, &record.payload));
            }
            let tmp = dir.join(WAL_TMP);
            {
                let mut f = File::create(&tmp).map_err(io_err("create wal compaction tmp"))?;
                f.write_all(&clean)
                    .map_err(io_err("write wal compaction tmp"))?;
                f.sync_all().map_err(io_err("fsync wal compaction tmp"))?;
            }
            fs::rename(&tmp, &wal_path).map_err(io_err("rename compacted wal"))?;
            sync_dir(&dir)?;
            let dropped = decoded.stale_skipped
                + decoded.duplicates_skipped
                + u64::from(decoded.torn_bytes > 0);
            dwqa_obs::counter_add(names::STORE_RECOVERY_TRUNCATED, dropped);
        }

        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&wal_path)
            .map_err(io_err("open wal"))?;
        let wal_len = wal.seek(SeekFrom::End(0)).map_err(io_err("seek wal end"))?;

        let next_seq = decoded
            .live
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(ckpt_next_seq)
            .max(ckpt_next_seq);
        let wal_records = decoded.live.len() as u64;
        let store = FeedbackStore {
            dir,
            config,
            wal,
            wal_len,
            generation,
            next_seq,
            wal_records,
            unsynced: 0,
            wedged: false,
            torn: None,
            tap: None,
        };
        let recovery = Recovery {
            checkpoint,
            generation,
            records: decoded.live,
            torn_bytes: decoded.torn_bytes,
            stale_skipped: decoded.stale_skipped,
            duplicates_skipped: decoded.duplicates_skipped,
            compacted,
        };
        Ok((store, recovery))
    }

    /// Arms (or disarms) the torn-write fault layer for subsequent
    /// appends.
    pub fn set_torn(&mut self, plan: Option<TornPlan>) {
        self.torn = plan.map(TornWriter::new);
    }

    /// Registers (or removes) the [`FrameTap`] that observes every
    /// durable frame in wire encoding — the replication shipping hook.
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.tap = tap;
    }

    /// Appends one committed-transaction payload, returning its
    /// sequence number once the bytes are on disk under the configured
    /// [`FsyncPolicy`]. A torn-write fault (injected or a real I/O
    /// failure mid-append) wedges the store — the record must be
    /// considered *not committed* and the caller should roll back.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        if payload.len() > self.config.max_record_bytes {
            return Err(StoreError::TooLarge {
                len: payload.len(),
                max: self.config.max_record_bytes,
            });
        }
        let started = Instant::now();
        let seq = self.next_seq;
        let frame = wal::encode_record(self.generation, seq, payload);
        let _span = dwqa_obs::span!("wal", seq, bytes = frame.len() as u64);

        let decision = match &self.torn {
            Some(writer) => writer.decide(seq, frame.len()),
            None => TornDecision::default(),
        };
        if let Some(fault) = decision.fault {
            return Err(self.inject_fault(fault, &frame));
        }

        if let Err(e) = self.write_frame(&frame) {
            // A real write failure may have left a partial frame on
            // disk — same shape as a torn write, same response: wedge.
            self.wedged = true;
            return Err(e);
        }
        let mut written = frame.len() as u64;
        if decision.duplicate {
            // Benign fault: the frame lands twice (a retried write
            // that succeeded both times). Recovery keeps one copy.
            dwqa_obs::counter_add(names::STORE_TORN_FAULTS, 1);
            dwqa_obs::event!("torn_duplicate", seq);
            if let Err(e) = self.write_frame(&frame) {
                self.wedged = true;
                return Err(e);
            }
            written += frame.len() as u64;
        }
        self.wal_len += written;
        if let Err(e) = self.policy_sync() {
            self.wedged = true;
            return Err(e);
        }
        self.next_seq = seq + 1;
        self.wal_records += 1;
        // Ship the committed frame (once, even when the torn layer
        // duplicated it locally): taps only ever see durable bytes.
        if let Some(FrameTap(tap)) = self.tap.as_mut() {
            tap(seq + 1, &frame);
        }
        dwqa_obs::counter_add(names::STORE_WAL_APPENDS, 1);
        dwqa_obs::counter_add(names::STORE_WAL_BYTES, written);
        dwqa_obs::histogram_record_us(
            names::STORE_WAL_APPEND_TIME,
            started.elapsed().as_micros() as u64,
        );
        Ok(seq)
    }

    /// Acts out a process death mid-append: leave the file exactly as
    /// the dying process would have, then wedge.
    fn inject_fault(&mut self, fault: TornFault, frame: &[u8]) -> StoreError {
        dwqa_obs::counter_add(names::STORE_TORN_FAULTS, 1);
        self.wedged = true;
        let pre_len = self.wal_len;
        match fault {
            TornFault::ShortWrite(cut) => {
                dwqa_obs::event!("torn_short_write", bytes = cut as u64);
                let cut = cut.min(frame.len().saturating_sub(1)).max(1);
                if let Err(e) = self.write_frame(&frame[..cut]) {
                    return e;
                }
                let _ = self.wal.sync_data();
                StoreError::Torn("short write")
            }
            TornFault::BitFlip(bit) => {
                dwqa_obs::event!("torn_bit_flip", bit = bit as u64);
                let mut bad = frame.to_vec();
                let idx = (bit / 8).min(bad.len() - 1);
                bad[idx] ^= 1 << (bit % 8);
                if let Err(e) = self.write_frame(&bad) {
                    return e;
                }
                let _ = self.wal.sync_data();
                StoreError::Torn("bit flip")
            }
            TornFault::FsyncFail => {
                dwqa_obs::event!("torn_fsync_fail");
                // The write reached the page cache but the flush
                // "failed": those bytes never hit the platter, so undo
                // them to model the post-crash file.
                if let Err(e) = self.write_frame(frame) {
                    return e;
                }
                if let Err(e) = self
                    .wal
                    .set_len(pre_len)
                    .map_err(io_err("undo unsynced append"))
                {
                    return e;
                }
                let _ = self.wal.seek(SeekFrom::Start(pre_len));
                let _ = self.wal.sync_data();
                StoreError::Torn("fsync failed")
            }
        }
    }

    fn write_frame(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.wal
            .write_all(bytes)
            .map_err(io_err("append wal record"))
    }

    fn policy_sync(&mut self) -> Result<(), StoreError> {
        match self.config.fsync {
            FsyncPolicy::Always => self.do_sync(),
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.do_sync()?;
                }
                Ok(())
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    fn do_sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync_data().map_err(io_err("fsync wal"))?;
        self.unsynced = 0;
        dwqa_obs::counter_add(names::STORE_WAL_FSYNCS, 1);
        Ok(())
    }

    /// Writes a checkpoint: the serialized snapshot becomes the new
    /// recovery base (tmp → fsync → atomic rename), the generation is
    /// bumped, and the WAL is truncated. On any failure the *previous*
    /// checkpoint + WAL stay authoritative and the store keeps
    /// accepting appends — a missed checkpoint costs replay time, not
    /// durability.
    pub fn checkpoint(&mut self, snapshot: &[u8]) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let started = Instant::now();
        let _span = dwqa_obs::span!(
            "checkpoint",
            generation = self.generation + 1,
            bytes = snapshot.len() as u64
        );
        match self.write_checkpoint(snapshot) {
            Ok(()) => {
                dwqa_obs::counter_add(names::STORE_CHECKPOINTS, 1);
                dwqa_obs::histogram_record_us(
                    names::STORE_CHECKPOINT_TIME,
                    started.elapsed().as_micros() as u64,
                );
                Ok(())
            }
            Err(e) => {
                dwqa_obs::counter_add(names::STORE_CHECKPOINT_FAILURES, 1);
                Err(e)
            }
        }
    }

    fn write_checkpoint(&mut self, snapshot: &[u8]) -> Result<(), StoreError> {
        let new_gen = self.generation + 1;
        let body = wal::encode_checkpoint(new_gen, self.next_seq, snapshot);
        let tmp = self.checkpoint_tmp_path();
        {
            let mut f = File::create(&tmp).map_err(io_err("create checkpoint tmp"))?;
            f.write_all(&body).map_err(io_err("write checkpoint tmp"))?;
            f.sync_all().map_err(io_err("fsync checkpoint tmp"))?;
        }
        fs::rename(&tmp, self.checkpoint_path()).map_err(io_err("rename checkpoint"))?;
        sync_dir(&self.dir)?;
        // The new checkpoint is authoritative from here on; truncating
        // the log is reclamation. If it fails, the old-generation
        // records linger and recovery skips them as stale.
        self.generation = new_gen;
        self.wal
            .set_len(0)
            .map_err(io_err("truncate wal after checkpoint"))?;
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(io_err("rewind wal after checkpoint"))?;
        self.wal
            .sync_data()
            .map_err(io_err("fsync truncated wal"))?;
        self.wal_len = 0;
        self.wal_records = 0;
        self.unsynced = 0;
        if let Some(FrameTap(tap)) = self.tap.as_mut() {
            tap(self.next_seq, &body);
        }
        Ok(())
    }

    /// Promotion fence: raises the generation floor to at least
    /// `floor`, then checkpoints `snapshot` (which bumps one further
    /// and truncates the WAL). The returned generation is therefore
    /// strictly above both the local one and `floor` — any frame a
    /// resurrected old primary still carries is stamped at or below
    /// `floor` and will be skipped as stale by the existing recovery
    /// and replication paths. The floor raise and checkpoint are one
    /// operation on purpose: a raised floor without a fresh checkpoint
    /// would orphan the WAL records already on disk.
    pub fn promote(&mut self, snapshot: &[u8], floor: u64) -> Result<u64, StoreError> {
        self.generation = self.generation.max(floor);
        self.checkpoint(snapshot)?;
        Ok(self.generation)
    }

    /// The sequence number of the oldest record still in the WAL (the
    /// checkpoint covers everything below it). Equal to
    /// [`Self::next_seq`] when the WAL is empty.
    pub fn first_live_seq(&self) -> u64 {
        self.next_seq - self.wal_records
    }

    /// The segmented catch-up reader for replication: every committed
    /// frame a standby at `from_seq` is missing, in apply order and in
    /// wire encoding.
    ///
    /// When `from_seq` predates the WAL's oldest record, the current
    /// checkpoint frame is shipped first (a full sync), then the whole
    /// WAL suffix; otherwise just the records from `from_seq` on. Both
    /// segments are re-read from disk and re-validated, so only frames
    /// that would survive recovery are ever shipped.
    pub fn replication_backlog(&self, from_seq: u64) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut frames = Vec::new();
        let first_live = self.first_live_seq();
        if from_seq < first_live {
            let bytes = match fs::read(self.checkpoint_path()) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == ErrorKind::NotFound && first_live == 0 => Vec::new(),
                Err(e) => {
                    return Err(StoreError::Io {
                        context: "read checkpoint for backlog",
                        source: e,
                    })
                }
            };
            if !bytes.is_empty() {
                wal::decode_checkpoint(&bytes).map_err(StoreError::CorruptCheckpoint)?;
                frames.push(bytes);
            }
        }
        let image = match fs::read(self.wal_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(StoreError::Io {
                    context: "read wal for backlog",
                    source: e,
                })
            }
        };
        let decoded = wal::decode_wal(&image, self.generation, self.config.max_record_bytes);
        for record in &decoded.live {
            if from_seq >= first_live && record.seq < from_seq {
                continue;
            }
            frames.push(wal::encode_record(
                self.generation,
                record.seq,
                &record.payload,
            ));
        }
        Ok(frames)
    }

    /// True once `checkpoint_every` records have accumulated since the
    /// last checkpoint (always false when the cadence is `None`).
    pub fn checkpoint_due(&self) -> bool {
        self.config
            .checkpoint_every
            .map(|every| self.wal_records >= every)
            .unwrap_or(false)
    }

    /// The configuration in force.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record log (`feedback.wal`).
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Path of the checkpoint file (`checkpoint.bin`).
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Path of the checkpoint staging file (`checkpoint.tmp`).
    pub fn checkpoint_tmp_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_TMP)
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Committed records currently in the WAL (since the last
    /// checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Bytes currently in the WAL file.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// True when a torn write has wedged the store; reopen to recover.
    pub fn wedged(&self) -> bool {
        self.wedged
    }
}
