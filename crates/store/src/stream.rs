//! Public streaming frame codec for WAL shipping over a replication
//! link.
//!
//! The on-disk WAL format (see [`crate::wal`]) is also the wire format:
//! a primary ships the exact frames it writes locally, a standby feeds
//! received bytes into a [`FrameStream`] and gets back validated
//! [`Frame`]s. Three additional control magics ride the same framing —
//! `subscribe` (standby → primary offset negotiation), `ack` (standby →
//! primary applied position) and `heartbeat` (primary → standby
//! liveness + its own position) — so every byte on the link is
//! CRC-checked and generation-stamped the same way.
//!
//! The decoder is *total*: arbitrary bytes yield either frames whose
//! CRC verifies, a "need more bytes" signal, or a typed
//! [`FrameStreamError`] carrying the resumable stream offset. It never
//! panics and never fabricates a frame, mirroring the recovery reader's
//! stance — a torn or corrupted link frame ends the stream, and the
//! follower resumes by re-subscribing from its own applied sequence
//! number (deduplicating by `counter`, so a frame is never applied
//! twice).

use crate::wal;

/// Magic for `subscribe` frames (standby → primary): `counter` is the
/// sequence the standby wants shipping to resume from.
pub(crate) const SUB_MAGIC: u32 = u32::from_le_bytes(*b"DWS1");
/// Magic for `ack` frames (standby → primary): `counter` is the
/// standby's applied `next_seq` (everything below it is durable there).
pub(crate) const ACK_MAGIC: u32 = u32::from_le_bytes(*b"DWA2");
/// Magic for `heartbeat` frames (primary → standby): `counter` is the
/// primary's `next_seq`; the payload is its advertised client address.
pub(crate) const HB_MAGIC: u32 = u32::from_le_bytes(*b"DWH1");

/// What kind of frame arrived on (or is bound for) the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A committed WAL record; `counter` is its sequence number.
    Record,
    /// A full checkpoint snapshot; `counter` is the `next_seq` the
    /// snapshot covers up to (catch-up / full-sync).
    Checkpoint,
    /// Offset negotiation from a standby; `counter` is the resume seq.
    Subscribe,
    /// Applied-position report from a standby; `counter` is its
    /// `next_seq`.
    Ack,
    /// Primary liveness; `counter` is the primary's `next_seq`.
    Heartbeat,
}

impl FrameKind {
    fn magic(self) -> u32 {
        match self {
            FrameKind::Record => wal::WAL_MAGIC,
            FrameKind::Checkpoint => wal::CKPT_MAGIC,
            FrameKind::Subscribe => SUB_MAGIC,
            FrameKind::Ack => ACK_MAGIC,
            FrameKind::Heartbeat => HB_MAGIC,
        }
    }

    fn from_magic(magic: u32) -> Option<FrameKind> {
        match magic {
            m if m == wal::WAL_MAGIC => Some(FrameKind::Record),
            m if m == wal::CKPT_MAGIC => Some(FrameKind::Checkpoint),
            m if m == SUB_MAGIC => Some(FrameKind::Subscribe),
            m if m == ACK_MAGIC => Some(FrameKind::Ack),
            m if m == HB_MAGIC => Some(FrameKind::Heartbeat),
            _ => None,
        }
    }

    /// Human label (`record`, `checkpoint`, …) for error messages.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Record => "record",
            FrameKind::Checkpoint => "checkpoint",
            FrameKind::Subscribe => "subscribe",
            FrameKind::Ack => "ack",
            FrameKind::Heartbeat => "heartbeat",
        }
    }
}

/// One validated frame off the link (or one to put on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Generation stamp (store checkpoint generation of the sender).
    pub generation: u64,
    /// Kind-specific counter: record seq, checkpoint/ack/subscribe/
    /// heartbeat `next_seq`.
    pub counter: u64,
    /// Kind-specific payload (transaction bytes, snapshot bytes,
    /// advertised address, or empty).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A control frame with an empty payload.
    fn control(kind: FrameKind, generation: u64, counter: u64) -> Frame {
        Frame {
            kind,
            generation,
            counter,
            payload: Vec::new(),
        }
    }

    /// A `subscribe` frame asking shipping to resume from `next_seq`.
    pub fn subscribe(generation: u64, next_seq: u64) -> Frame {
        Frame::control(FrameKind::Subscribe, generation, next_seq)
    }

    /// An `ack` frame reporting the standby's applied `next_seq`.
    pub fn ack(generation: u64, next_seq: u64) -> Frame {
        Frame::control(FrameKind::Ack, generation, next_seq)
    }

    /// A `heartbeat` frame carrying the primary's `next_seq` and its
    /// advertised client address (the `NotPrimary` redirect hint).
    pub fn heartbeat(generation: u64, next_seq: u64, advertised: &str) -> Frame {
        Frame {
            kind: FrameKind::Heartbeat,
            generation,
            counter: next_seq,
            payload: advertised.as_bytes().to_vec(),
        }
    }

    /// Encodes the frame in the WAL wire format (magic, length, CRC,
    /// generation, counter, payload — all little-endian).
    pub fn encode(&self) -> Vec<u8> {
        wal::encode_frame(
            self.kind.magic(),
            self.generation,
            self.counter,
            &self.payload,
        )
    }
}

/// Why a [`FrameStream`] refused the bytes at `offset`. Every variant
/// carries the cumulative stream offset of the offending frame start,
/// so the caller knows exactly how much of the stream was consumed
/// cleanly before the failure (the resumable position).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameStreamError {
    /// The four bytes at `offset` are no known frame magic: the stream
    /// is desynchronized or corrupted.
    BadMagic {
        /// Stream offset of the bad frame start.
        offset: u64,
    },
    /// The frame's length prefix exceeds the configured ceiling — an
    /// implausible frame, treated as corruption rather than buffered.
    Oversized {
        /// Stream offset of the bad frame start.
        offset: u64,
        /// The length the prefix claimed.
        len: usize,
        /// The configured per-frame ceiling.
        max: usize,
    },
    /// The frame decoded structurally but its CRC does not match — a
    /// torn or bit-flipped frame.
    CrcMismatch {
        /// Stream offset of the bad frame start.
        offset: u64,
        /// What kind of frame the magic claimed.
        kind: FrameKind,
    },
}

impl FrameStreamError {
    /// The cumulative stream offset at which the stream became
    /// undecodable — everything before it was validated and handed out.
    pub fn offset(&self) -> u64 {
        match self {
            FrameStreamError::BadMagic { offset }
            | FrameStreamError::Oversized { offset, .. }
            | FrameStreamError::CrcMismatch { offset, .. } => *offset,
        }
    }
}

impl std::fmt::Display for FrameStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameStreamError::BadMagic { offset } => {
                write!(f, "no frame magic at stream offset {offset}")
            }
            FrameStreamError::Oversized { offset, len, max } => {
                write!(
                    f,
                    "frame at offset {offset} claims {len} bytes, over the {max}-byte ceiling"
                )
            }
            FrameStreamError::CrcMismatch { offset, kind } => {
                write!(
                    f,
                    "{} frame at offset {offset} failed its CRC check",
                    kind.label()
                )
            }
        }
    }
}

impl std::error::Error for FrameStreamError {}

/// Incremental frame decoder over an untrusted byte stream.
///
/// Feed bytes with [`FrameStream::push`], drain frames with
/// [`FrameStream::next`]. `Ok(None)` means "need more bytes"; an error
/// is terminal for the stream — the link should be dropped and shipping
/// renegotiated by sequence number (the decoded prefix stays valid).
#[derive(Debug)]
pub struct FrameStream {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    start: usize,
    /// Cumulative stream offset of `buf[start]`.
    offset: u64,
    max_frame: usize,
    failed: Option<FrameStreamError>,
}

impl FrameStream {
    /// A decoder refusing frames whose payload exceeds `max_frame`
    /// bytes (use the store's `max_record_bytes`).
    pub fn new(max_frame: usize) -> FrameStream {
        FrameStream {
            buf: Vec::new(),
            start: 0,
            offset: 0,
            max_frame,
            failed: None,
        }
    }

    /// Appends raw bytes received from the link.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, keeping the
        // buffer proportional to the undecoded remainder.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Cumulative stream offset of the next undecoded byte — the
    /// resumable position after a clean prefix.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// * `Ok(Some(frame))` — a validated frame (CRC checked);
    /// * `Ok(None)` — the buffer ends mid-frame, push more bytes;
    /// * `Err(_)` — the stream is undecodable at [`Self::offset`]; the
    ///   error is sticky, every later call returns it again.
    ///
    /// Deliberately *not* `Iterator::next`: the tri-state return
    /// (frame / starved / poisoned) doesn't fit `Option<Item>`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameStreamError> {
        if let Some(err) = &self.failed {
            return Err(err.clone());
        }
        let rest = &self.buf[self.start..];
        if rest.len() < wal::FRAME_HEADER {
            return Ok(None);
        }
        let magic = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let Some(kind) = FrameKind::from_magic(magic) else {
            return Err(self.fail(FrameStreamError::BadMagic {
                offset: self.offset,
            }));
        };
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        if len > self.max_frame {
            return Err(self.fail(FrameStreamError::Oversized {
                offset: self.offset,
                len,
                max: self.max_frame,
            }));
        }
        if rest.len() < wal::FRAME_HEADER + len {
            return Ok(None);
        }
        let crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        let mut word = [0u8; 8];
        word.copy_from_slice(&rest[12..20]);
        let generation = u64::from_le_bytes(word);
        word.copy_from_slice(&rest[20..28]);
        let counter = u64::from_le_bytes(word);
        let payload = &rest[wal::FRAME_HEADER..wal::FRAME_HEADER + len];
        let expect = wal::crc32(&[&generation.to_le_bytes(), &counter.to_le_bytes(), payload]);
        if crc != expect {
            return Err(self.fail(FrameStreamError::CrcMismatch {
                offset: self.offset,
                kind,
            }));
        }
        let frame = Frame {
            kind,
            generation,
            counter,
            payload: payload.to_vec(),
        };
        self.start += wal::FRAME_HEADER + len;
        self.offset += (wal::FRAME_HEADER + len) as u64;
        Ok(Some(frame))
    }

    fn fail(&mut self, err: FrameStreamError) -> FrameStreamError {
        self.failed = Some(err.clone());
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: usize = 1 << 20;

    fn record(generation: u64, seq: u64, payload: &[u8]) -> Frame {
        Frame {
            kind: FrameKind::Record,
            generation,
            counter: seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn frames_round_trip_through_the_stream_in_one_push() {
        let frames = [
            record(1, 0, b"alpha"),
            Frame::subscribe(1, 7),
            Frame::ack(2, 9),
            Frame::heartbeat(2, 11, "127.0.0.1:4040"),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend(f.encode());
        }
        let mut stream = FrameStream::new(MAX);
        stream.push(&wire);
        for f in &frames {
            assert_eq!(stream.next().unwrap().as_ref(), Some(f));
        }
        assert_eq!(stream.next().unwrap(), None);
        assert_eq!(stream.offset(), wire.len() as u64);
    }

    #[test]
    fn byte_at_a_time_delivery_decodes_identically() {
        let frame = record(3, 42, b"drip-fed payload");
        let wire = frame.encode();
        let mut stream = FrameStream::new(MAX);
        for (i, byte) in wire.iter().enumerate() {
            stream.push(std::slice::from_ref(byte));
            let got = stream.next().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "frame surfaced early at byte {i}");
            } else {
                assert_eq!(got, Some(frame.clone()));
            }
        }
    }

    #[test]
    fn corruption_is_typed_sticky_and_offset_reported() {
        let good = record(1, 0, b"ok");
        let mut wire = good.encode();
        let mut bad = record(1, 1, b"corrupt-me").encode();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        wire.extend(&bad);

        let mut stream = FrameStream::new(MAX);
        stream.push(&wire);
        assert_eq!(stream.next().unwrap(), Some(good.clone()));
        let err = stream.next().unwrap_err();
        assert_eq!(err.offset(), good.encode().len() as u64);
        assert!(matches!(err, FrameStreamError::CrcMismatch { .. }));
        // Sticky: pushing more valid bytes does not resurrect the link.
        stream.push(&record(1, 2, b"later").encode());
        assert_eq!(stream.next().unwrap_err(), err);
    }

    #[test]
    fn unknown_magic_and_oversized_frames_are_refused() {
        let mut stream = FrameStream::new(MAX);
        stream.push(b"NOPE-and-then-some-more-bytes-etc!!!");
        assert!(matches!(
            stream.next().unwrap_err(),
            FrameStreamError::BadMagic { offset: 0 }
        ));

        let mut tiny = FrameStream::new(4);
        tiny.push(&record(1, 0, b"too large for the ceiling").encode());
        assert!(matches!(
            tiny.next().unwrap_err(),
            FrameStreamError::Oversized { offset: 0, .. }
        ));
    }
}
