//! Seeded torn-write fault injection for the WAL, in the spirit of
//! `dwqa-faults::FaultInjector`: deterministic per-sequence rolls from
//! a SplitMix64 hash, so a given `(seed, seq)` always injects the same
//! fault — tests and `exp_crash` can replay a failure exactly.
//!
//! Faults model a process (or disk) dying mid-append:
//!
//! * **short write** — only a prefix of the record reaches the file;
//! * **bit flip** — the record lands whole but one bit is wrong;
//! * **failed fsync** — the write is undone (never reached the platter)
//!   and the store wedges;
//! * **duplicated record** — the frame is written twice (a retried
//!   write that actually landed both times); this one is *benign*:
//!   the append succeeds and recovery deduplicates by sequence number.
//!
//! Any non-benign fault leaves the file torn exactly as a crash would
//! and *wedges* the store: further appends are refused until the store
//! is reopened (recovered), mirroring how a real process would have to
//! restart.

/// Rates for each torn-write fault, rolled independently per append.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TornPlan {
    /// Seed for the deterministic per-sequence rolls.
    pub seed: u64,
    /// Probability a record is cut short mid-write (wedges).
    pub short_write: f64,
    /// Probability one bit of the written record is flipped (wedges).
    pub bit_flip: f64,
    /// Probability the post-write fsync "fails": the append is undone
    /// and the store wedges.
    pub fsync_fail: f64,
    /// Probability the record is written twice (benign; recovery
    /// deduplicates).
    pub duplicate: f64,
}

impl TornPlan {
    /// A fault-free plan under `seed` (rates all zero).
    pub fn new(seed: u64) -> TornPlan {
        TornPlan {
            seed,
            short_write: 0.0,
            bit_flip: 0.0,
            fsync_fail: 0.0,
            duplicate: 0.0,
        }
    }

    /// The standard chaos mix: `rate` (clamped to `[0, 1]`) spread over
    /// the four faults — 30% short writes, 20% bit flips, 20% failed
    /// fsyncs, 30% duplicated records.
    pub fn chaos(seed: u64, rate: f64) -> TornPlan {
        let rate = rate.clamp(0.0, 1.0);
        TornPlan {
            seed,
            short_write: 0.3 * rate,
            bit_flip: 0.2 * rate,
            fsync_fail: 0.2 * rate,
            duplicate: 0.3 * rate,
        }
    }

    /// Sets the short-write rate (clamped to `[0, 1]`).
    pub fn with_short_write(mut self, rate: f64) -> TornPlan {
        self.short_write = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the bit-flip rate (clamped to `[0, 1]`).
    pub fn with_bit_flip(mut self, rate: f64) -> TornPlan {
        self.bit_flip = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the failed-fsync rate (clamped to `[0, 1]`).
    pub fn with_fsync_fail(mut self, rate: f64) -> TornPlan {
        self.fsync_fail = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplicated-record rate (clamped to `[0, 1]`).
    pub fn with_duplicate(mut self, rate: f64) -> TornPlan {
        self.duplicate = rate.clamp(0.0, 1.0);
        self
    }
}

/// What happens to one record frame: a process-killing fault, a benign
/// duplicated write, or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornFault {
    /// Write only this many bytes of the frame, then die.
    ShortWrite(usize),
    /// Write the whole frame with this bit (index into the frame's
    /// bits) inverted, then die.
    BitFlip(usize),
    /// Write the whole frame, fail the fsync: undo the append and die.
    FsyncFail,
}

/// Per-append decision from [`TornWriter::decide`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TornDecision {
    /// Write the frame twice (benign; deduplicated on recovery).
    pub duplicate: bool,
    /// The process-killing fault to inject, if any.
    pub fault: Option<TornFault>,
}

/// The fault layer itself: owns a [`TornPlan`] and turns `(seq, frame
/// length)` into a deterministic [`TornDecision`].
#[derive(Debug, Clone)]
pub struct TornWriter {
    plan: TornPlan,
}

const SALT_SHORT: u64 = 0x5348;
const SALT_FLIP: u64 = 0x464C;
const SALT_FSYNC: u64 = 0x4653;
const SALT_DUP: u64 = 0x4455;
const SALT_POINT: u64 = 0x5054;

/// SplitMix64 finalizer — the same bit mixer the fault and feed layers
/// use for deterministic seeded rolls.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TornWriter {
    /// Wraps a plan.
    pub fn new(plan: TornPlan) -> TornWriter {
        TornWriter { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &TornPlan {
        &self.plan
    }

    fn unit(&self, seq: u64, salt: u64) -> f64 {
        let h = mix(self.plan.seed ^ mix(seq.wrapping_mul(0x9E37).wrapping_add(salt)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn point(&self, seq: u64, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            mix(self.plan.seed ^ mix(seq.wrapping_add(SALT_POINT))) % bound
        }
    }

    /// Decides the fate of the frame about to be appended as `seq`,
    /// `frame_len` bytes long. Deterministic in `(seed, seq)`.
    pub fn decide(&self, seq: u64, frame_len: usize) -> TornDecision {
        let fault = if self.unit(seq, SALT_SHORT) < self.plan.short_write {
            // Cut somewhere strictly inside the frame: at least one
            // byte written, at least one byte missing.
            let cut = 1 + self.point(seq, frame_len.saturating_sub(1).max(1) as u64) as usize;
            Some(TornFault::ShortWrite(
                cut.min(frame_len.saturating_sub(1)).max(1),
            ))
        } else if self.unit(seq, SALT_FLIP) < self.plan.bit_flip {
            Some(TornFault::BitFlip(
                self.point(seq, (frame_len as u64) * 8) as usize
            ))
        } else if self.unit(seq, SALT_FSYNC) < self.plan.fsync_fail {
            Some(TornFault::FsyncFail)
        } else {
            None
        };
        let duplicate = fault.is_none() && self.unit(seq, SALT_DUP) < self.plan.duplicate;
        TornDecision { duplicate, fault }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_seq() {
        let writer = TornWriter::new(TornPlan::chaos(42, 0.5));
        for seq in 0..64 {
            assert_eq!(writer.decide(seq, 100), writer.decide(seq, 100));
        }
        let other = TornWriter::new(TornPlan::chaos(43, 0.5));
        assert!(
            (0..64).any(|seq| writer.decide(seq, 100) != other.decide(seq, 100)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn zero_rates_never_fault_and_certain_rates_always_do() {
        let quiet = TornWriter::new(TornPlan::new(7));
        assert!((0..256).all(|seq| quiet.decide(seq, 64) == TornDecision::default()));

        let shorts = TornWriter::new(TornPlan::new(7).with_short_write(1.0));
        for seq in 0..256 {
            match shorts.decide(seq, 64).fault {
                Some(TornFault::ShortWrite(cut)) => {
                    assert!((1..64).contains(&cut), "cut {cut} outside the frame");
                }
                other => panic!("expected a short write, got {other:?}"),
            }
        }

        let dups = TornWriter::new(TornPlan::new(7).with_duplicate(1.0));
        assert!((0..256).all(|seq| dups.decide(seq, 64).duplicate));
    }

    #[test]
    fn rates_are_clamped() {
        let plan = TornPlan::new(1).with_short_write(7.0).with_bit_flip(-3.0);
        assert_eq!(plan.short_write, 1.0);
        assert_eq!(plan.bit_flip, 0.0);
    }
}
