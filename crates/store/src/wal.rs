//! WAL record / checkpoint codec: length-prefixed, CRC-32-checksummed,
//! generation-stamped frames.
//!
//! Record layout (all little-endian):
//!
//! ```text
//! [magic "DWA1" u32][payload_len u32][crc u32][generation u64][seq u64][payload]
//! ```
//!
//! with `crc = CRC-32/IEEE(generation ‖ seq ‖ payload)`. The checkpoint
//! file uses the same shape under magic `"DWK1"`, carrying `next_seq`
//! where a record carries `seq`, so recovery can restore the sequence
//! counter even after the log was truncated.
//!
//! Decoding is deliberately paranoid: the first frame whose magic,
//! length, generation or CRC fails validation ends the log — everything
//! from that offset on is a *torn tail* to be truncated, never
//! half-loaded. Frames from an older generation (crash between
//! checkpoint rename and log truncation) are skipped; repeated sequence
//! numbers (duplicated writes) keep only the first copy.

use crate::store::WalRecord;
use std::collections::HashSet;

/// First four bytes of every WAL record.
pub(crate) const WAL_MAGIC: u32 = u32::from_le_bytes(*b"DWA1");
/// First four bytes of the checkpoint file.
pub(crate) const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"DWK1");
/// Fixed bytes before the payload in both frame kinds.
pub(crate) const FRAME_HEADER: usize = 28;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE reflected polynomial) over the concatenation of
/// `chunks`, table-driven and std-only.
pub(crate) fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &byte in *chunk {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
    }
    !crc
}

pub(crate) fn encode_frame(magic: u32, generation: u64, counter: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&magic.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&[&generation.to_le_bytes(), &counter.to_le_bytes(), payload]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&counter.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Encodes one WAL record frame.
pub(crate) fn encode_record(generation: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame(WAL_MAGIC, generation, seq, payload)
}

/// Encodes the checkpoint file body.
pub(crate) fn encode_checkpoint(generation: u64, next_seq: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame(CKPT_MAGIC, generation, next_seq, payload)
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Validates and unpacks the checkpoint file:
/// `(generation, next_seq, payload)` or the reason it is corrupt.
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, u64, Vec<u8>), String> {
    if bytes.len() < FRAME_HEADER {
        return Err(format!(
            "file is {} bytes, shorter than the {FRAME_HEADER}-byte header",
            bytes.len()
        ));
    }
    if read_u32(bytes, 0) != CKPT_MAGIC {
        return Err("bad magic (not a checkpoint file)".to_string());
    }
    let len = read_u32(bytes, 4) as usize;
    if FRAME_HEADER + len != bytes.len() {
        return Err(format!(
            "length prefix {len} disagrees with file size {}",
            bytes.len()
        ));
    }
    let crc = read_u32(bytes, 8);
    let generation = read_u64(bytes, 12);
    let next_seq = read_u64(bytes, 20);
    let payload = &bytes[FRAME_HEADER..];
    let expect = crc32(&[&generation.to_le_bytes(), &next_seq.to_le_bytes(), payload]);
    if crc != expect {
        return Err(format!(
            "CRC mismatch (stored {crc:#010x}, computed {expect:#010x})"
        ));
    }
    Ok((generation, next_seq, payload.to_vec()))
}

/// What a WAL scan found.
pub(crate) struct DecodedWal {
    /// Committed current-generation records, deduplicated, in log
    /// (= sequence) order.
    pub live: Vec<WalRecord>,
    /// Valid records from an older generation, skipped: their effects
    /// are already inside the checkpoint.
    pub stale_skipped: u64,
    /// Valid records whose sequence number repeated an earlier one
    /// (a duplicated torn write); only the first copy is kept.
    pub duplicates_skipped: u64,
    /// Bytes from the first invalid frame to end-of-file — the torn
    /// tail that recovery truncates.
    pub torn_bytes: u64,
}

impl DecodedWal {
    /// True when the on-disk log differs from the clean encoding of
    /// `live` (recovery should compact it).
    pub(crate) fn needs_compaction(&self) -> bool {
        self.stale_skipped > 0 || self.duplicates_skipped > 0 || self.torn_bytes > 0
    }
}

/// Scans a WAL image, stopping (and counting the remainder as a torn
/// tail) at the first frame that fails any validation: short header,
/// bad magic, implausible length, future generation, or CRC mismatch.
pub(crate) fn decode_wal(bytes: &[u8], generation: u64, max_record: usize) -> DecodedWal {
    let mut live: Vec<WalRecord> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stale_skipped = 0u64;
    let mut duplicates_skipped = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER || read_u32(rest, 0) != WAL_MAGIC {
            break;
        }
        let len = read_u32(rest, 4) as usize;
        if len > max_record || FRAME_HEADER + len > rest.len() {
            break;
        }
        let crc = read_u32(rest, 8);
        let gen = read_u64(rest, 12);
        let seq = read_u64(rest, 20);
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let expect = crc32(&[&gen.to_le_bytes(), &seq.to_le_bytes(), payload]);
        if crc != expect || gen > generation {
            break;
        }
        if gen < generation {
            stale_skipped += 1;
        } else if !seen.insert(seq) {
            duplicates_skipped += 1;
        } else {
            live.push(WalRecord {
                seq,
                payload: payload.to_vec(),
            });
        }
        offset += FRAME_HEADER + len;
    }
    DecodedWal {
        live,
        stale_skipped,
        duplicates_skipped,
        torn_bytes: (bytes.len() - offset) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: usize = 1 << 20;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The classic CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn record_round_trips() {
        let mut log = encode_record(3, 7, b"hello");
        log.extend(encode_record(3, 8, b""));
        let decoded = decode_wal(&log, 3, MAX);
        assert_eq!(decoded.live.len(), 2);
        assert_eq!(decoded.live[0].seq, 7);
        assert_eq!(decoded.live[0].payload, b"hello");
        assert_eq!(decoded.live[1].seq, 8);
        assert!(decoded.live[1].payload.is_empty());
        assert!(!decoded.needs_compaction());
    }

    #[test]
    fn every_single_byte_corruption_truncates_at_that_record() {
        let good = encode_record(1, 0, b"alpha");
        for pos in 0..good.len() {
            for flip in [0x01u8, 0x80u8] {
                let mut log = good.clone();
                log[pos] ^= flip;
                log.extend(encode_record(1, 1, b"beta"));
                let decoded = decode_wal(&log, 1, MAX);
                assert!(
                    decoded.live.iter().all(|r| r.seq != 0),
                    "corrupt byte {pos} survived"
                );
                assert!(
                    decoded.torn_bytes > 0,
                    "corrupt byte {pos} not treated as torn"
                );
            }
        }
    }

    #[test]
    fn stale_generations_are_skipped_and_future_ones_are_torn() {
        let mut log = encode_record(1, 0, b"old");
        log.extend(encode_record(2, 5, b"new"));
        let decoded = decode_wal(&log, 2, MAX);
        assert_eq!(decoded.stale_skipped, 1);
        assert_eq!(decoded.live.len(), 1);
        assert_eq!(decoded.live[0].seq, 5);

        let mut log = encode_record(2, 5, b"new");
        log.extend(encode_record(3, 6, b"future"));
        let decoded = decode_wal(&log, 2, MAX);
        assert_eq!(decoded.live.len(), 1);
        assert!(decoded.torn_bytes > 0);
    }

    #[test]
    fn duplicate_sequence_numbers_keep_the_first_copy() {
        let mut log = encode_record(1, 4, b"first");
        log.extend(encode_record(1, 4, b"first"));
        log.extend(encode_record(1, 5, b"second"));
        let decoded = decode_wal(&log, 1, MAX);
        assert_eq!(decoded.duplicates_skipped, 1);
        assert_eq!(
            decoded.live.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_corruption() {
        let file = encode_checkpoint(9, 41, b"snapshot-bytes");
        let (generation, next_seq, payload) = decode_checkpoint(&file).unwrap();
        assert_eq!((generation, next_seq), (9, 41));
        assert_eq!(payload, b"snapshot-bytes");

        for pos in 0..file.len() {
            let mut bad = file.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_checkpoint(&bad).is_err(),
                "corrupt byte {pos} accepted"
            );
        }
        assert!(decode_checkpoint(&file[..file.len() - 1]).is_err());
        assert!(decode_checkpoint(b"").is_err());
    }
}
