//! Frame-decoding fuzz tests: the WAL and checkpoint readers must be
//! total over *arbitrary* bytes — any file content yields either a clean
//! recovery (whose records are a prefix of genuinely committed ones) or
//! a typed [`StoreError`], never a panic, never a fabricated record.

use dwqa_store::{FeedbackStore, StoreConfig, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dwqa-fuzz-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> StoreConfig {
    StoreConfig::builder()
        .checkpoint_every(None)
        .build()
        .unwrap()
}

fn payload(i: u64) -> Vec<u8> {
    format!("record-{i}-{}", "y".repeat((i as usize % 5) * 13)).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A WAL made of entirely arbitrary bytes: the reader decodes what
    /// it can, accounts the rest as a torn tail, and the store stays
    /// usable — no panic, no error escaping the typed enum.
    #[test]
    fn prop_arbitrary_wal_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = scratch("raw");
        // Lay the directory down with a real store, then replace the
        // log wholesale with garbage.
        let (store, _) = FeedbackStore::open(&dir, config()).unwrap();
        let wal_path = store.wal_path();
        drop(store);
        std::fs::write(&wal_path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((mut store, recovery)) => {
                // Nothing was ever committed, so nothing may surface.
                prop_assert!(
                    recovery.records.is_empty(),
                    "garbage decoded into records: {:?}",
                    recovery.records
                );
                // The recovered store must accept appends again.
                let seq = store.append(b"after-fuzz").unwrap();
                prop_assert_eq!(seq, 0);
            }
            Err(err) => {
                // Typed errors only; the formatter must be total too.
                let _ = err.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary bytes spliced into (inserted or overwritten onto) a
    /// valid WAL: recovery surfaces a strict prefix of the committed
    /// records with intact payloads, or fails with a typed error —
    /// never a record that was not appended.
    #[test]
    fn prop_spliced_mutations_yield_a_committed_prefix_or_typed_error(
        count in 1usize..8,
        pos_frac in 0.0f64..1.0,
        insert in any::<bool>(),
        junk in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let dir = scratch("splice");
        let (mut store, _) = FeedbackStore::open(&dir, config()).unwrap();
        for i in 0..count as u64 {
            store.append(&payload(i)).unwrap();
        }
        let wal_path = store.wal_path();
        drop(store);

        let mut bytes = std::fs::read(&wal_path).unwrap();
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        let pos = pos.min(bytes.len());
        if insert {
            bytes.splice(pos..pos, junk.iter().copied());
        } else {
            let end = (pos + junk.len()).min(bytes.len());
            bytes[pos..end].copy_from_slice(&junk[..end - pos]);
        }
        std::fs::write(&wal_path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((_store, recovery)) => {
                prop_assert!(recovery.records.len() <= count);
                for (i, record) in recovery.records.iter().enumerate() {
                    prop_assert_eq!(record.seq, i as u64);
                    prop_assert_eq!(
                        &record.payload,
                        &payload(i as u64),
                        "mutation fabricated a payload at seq {}",
                        i
                    );
                }
            }
            Err(err) => {
                let _ = err.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The checkpoint reader is just as total: arbitrary checkpoint
    /// bytes either fail with `CorruptCheckpoint` or recover cleanly.
    #[test]
    fn prop_arbitrary_checkpoint_bytes_fail_typed(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let dir = scratch("ckpt");
        let (mut store, _) = FeedbackStore::open(&dir, config()).unwrap();
        store.append(&payload(0)).unwrap();
        store.checkpoint(b"base").unwrap();
        let path = store.checkpoint_path();
        drop(store);
        std::fs::write(&path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((_store, recovery)) => {
                // An accidentally-valid checkpoint still yields a
                // structurally sound recovery.
                let _ = recovery.records.len();
            }
            Err(StoreError::CorruptCheckpoint(detail)) => {
                prop_assert!(!detail.is_empty());
            }
            Err(other) => {
                prop_assert!(false, "untyped checkpoint failure: {}", other);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
