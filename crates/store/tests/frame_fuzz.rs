//! Frame-decoding fuzz tests: the WAL and checkpoint readers must be
//! total over *arbitrary* bytes — any file content yields either a clean
//! recovery (whose records are a prefix of genuinely committed ones) or
//! a typed [`StoreError`], never a panic, never a fabricated record.
//!
//! The same discipline extends to the *streaming* reader
//! ([`FrameStream`]) that the replication link rides on: arbitrary
//! bytes yield frames plus a resumable offset or a typed
//! [`FrameStreamError`] — never a panic, never a frame delivered
//! twice, and never a different answer because of where the network
//! happened to split its reads.

use dwqa_store::{FeedbackStore, Frame, FrameStream, StoreConfig, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dwqa-fuzz-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> StoreConfig {
    StoreConfig::builder()
        .checkpoint_every(None)
        .build()
        .unwrap()
}

fn payload(i: u64) -> Vec<u8> {
    format!("record-{i}-{}", "y".repeat((i as usize % 5) * 13)).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A WAL made of entirely arbitrary bytes: the reader decodes what
    /// it can, accounts the rest as a torn tail, and the store stays
    /// usable — no panic, no error escaping the typed enum.
    #[test]
    fn prop_arbitrary_wal_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = scratch("raw");
        // Lay the directory down with a real store, then replace the
        // log wholesale with garbage.
        let (store, _) = FeedbackStore::open(&dir, config()).unwrap();
        let wal_path = store.wal_path();
        drop(store);
        std::fs::write(&wal_path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((mut store, recovery)) => {
                // Nothing was ever committed, so nothing may surface.
                prop_assert!(
                    recovery.records.is_empty(),
                    "garbage decoded into records: {:?}",
                    recovery.records
                );
                // The recovered store must accept appends again.
                let seq = store.append(b"after-fuzz").unwrap();
                prop_assert_eq!(seq, 0);
            }
            Err(err) => {
                // Typed errors only; the formatter must be total too.
                let _ = err.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary bytes spliced into (inserted or overwritten onto) a
    /// valid WAL: recovery surfaces a strict prefix of the committed
    /// records with intact payloads, or fails with a typed error —
    /// never a record that was not appended.
    #[test]
    fn prop_spliced_mutations_yield_a_committed_prefix_or_typed_error(
        count in 1usize..8,
        pos_frac in 0.0f64..1.0,
        insert in any::<bool>(),
        junk in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let dir = scratch("splice");
        let (mut store, _) = FeedbackStore::open(&dir, config()).unwrap();
        for i in 0..count as u64 {
            store.append(&payload(i)).unwrap();
        }
        let wal_path = store.wal_path();
        drop(store);

        let mut bytes = std::fs::read(&wal_path).unwrap();
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        let pos = pos.min(bytes.len());
        if insert {
            bytes.splice(pos..pos, junk.iter().copied());
        } else {
            let end = (pos + junk.len()).min(bytes.len());
            bytes[pos..end].copy_from_slice(&junk[..end - pos]);
        }
        std::fs::write(&wal_path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((_store, recovery)) => {
                prop_assert!(recovery.records.len() <= count);
                for (i, record) in recovery.records.iter().enumerate() {
                    prop_assert_eq!(record.seq, i as u64);
                    prop_assert_eq!(
                        &record.payload,
                        &payload(i as u64),
                        "mutation fabricated a payload at seq {}",
                        i
                    );
                }
            }
            Err(err) => {
                let _ = err.to_string();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The checkpoint reader is just as total: arbitrary checkpoint
    /// bytes either fail with `CorruptCheckpoint` or recover cleanly.
    #[test]
    fn prop_arbitrary_checkpoint_bytes_fail_typed(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let dir = scratch("ckpt");
        let (mut store, _) = FeedbackStore::open(&dir, config()).unwrap();
        store.append(&payload(0)).unwrap();
        store.checkpoint(b"base").unwrap();
        let path = store.checkpoint_path();
        drop(store);
        std::fs::write(&path, &bytes).unwrap();

        match FeedbackStore::open(&dir, config()) {
            Ok((_store, recovery)) => {
                // An accidentally-valid checkpoint still yields a
                // structurally sound recovery.
                let _ = recovery.records.len();
            }
            Err(StoreError::CorruptCheckpoint(detail)) => {
                prop_assert!(!detail.is_empty());
            }
            Err(other) => {
                prop_assert!(false, "untyped checkpoint failure: {}", other);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A deterministic little frame factory over the three encodable wire
/// kinds (records only leave a store's own WAL writer, so the free
/// constructors are what a fuzzer can mint).
fn wire_frame(i: u64) -> Frame {
    match i % 3 {
        0 => Frame::subscribe(i, i * 7),
        1 => Frame::ack(i, i * 7 + 1),
        _ => Frame::heartbeat(i, i * 7 + 2, &format!("127.0.0.1:{}", 1024 + i)),
    }
}

/// Drains every currently decodable frame, panicking on nothing.
fn drain(stream: &mut FrameStream) -> Result<Vec<Frame>, String> {
    let mut frames = Vec::new();
    loop {
        match stream.next() {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return Ok(frames),
            Err(e) => {
                // The error formatter and accessors must be total.
                let _ = e.to_string();
                let _ = e.offset();
                return Err(e.to_string());
            }
        }
    }
}

/// Body of `prop_stream_is_total_over_arbitrary_bytes` (kept out of
/// the proptest! macro: the vendored macro's expansion recursion
/// scales with body size).
fn check_stream_total(bytes: &[u8], cuts: &[usize]) {
    let mut stream = FrameStream::new(1 << 20);
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut start = 0;
    let mut failed = None;
    for cut in cuts.into_iter().chain(std::iter::once(bytes.len())) {
        stream.push(&bytes[start..cut]);
        start = cut;
        if let Err(e) = drain(&mut stream) {
            failed = Some(e);
            break;
        }
    }
    prop_assert!(stream.offset() <= bytes.len() as u64);
    if failed.is_some() {
        // Errors are sticky: more bytes never un-fail a stream.
        stream.push(b"more");
        prop_assert!(stream.next().is_err());
    }
}

/// Body of `prop_stream_decodes_are_chunking_invariant`.
fn check_chunking_invariance(count: u64, cuts: &[usize]) {
    let originals: Vec<Frame> = (0..count).map(wire_frame).collect();
    let mut wire = Vec::new();
    for frame in &originals {
        wire.extend_from_slice(&frame.encode());
    }
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut stream = FrameStream::new(1 << 20);
    let mut decoded = Vec::new();
    let mut start = 0;
    for cut in cuts.into_iter().chain(std::iter::once(wire.len())) {
        stream.push(&wire[start..cut]);
        start = cut;
        match drain(&mut stream) {
            Ok(frames) => decoded.extend(frames),
            Err(e) => prop_assert!(false, "valid stream failed: {e}"),
        }
    }
    prop_assert_eq!(decoded.len(), originals.len(), "lost or duplicated frames");
    for (got, want) in decoded.iter().zip(&originals) {
        prop_assert_eq!(got.kind, want.kind);
        prop_assert_eq!(got.generation, want.generation);
        prop_assert_eq!(got.counter, want.counter);
        prop_assert_eq!(&got.payload, &want.payload);
    }
    prop_assert_eq!(stream.offset(), wire.len() as u64);
    prop_assert_eq!(stream.buffered(), 0);
}

/// Body of `prop_stream_resumes_across_a_torn_boundary`.
fn check_torn_boundary_resume(count: u64, cut_frac: f64) {
    let originals: Vec<Frame> = (0..count).map(wire_frame).collect();
    let mut wire = Vec::new();
    let mut boundaries = vec![0u64];
    for frame in &originals {
        wire.extend_from_slice(&frame.encode());
        boundaries.push(wire.len() as u64);
    }
    let cut = ((wire.len() as f64) * cut_frac) as usize;

    let mut stream = FrameStream::new(1 << 20);
    stream.push(&wire[..cut]);
    let before = match drain(&mut stream) {
        Ok(frames) => frames,
        Err(e) => panic!("prefix failed: {e}"),
    };
    // The park position is a frame boundary covering exactly the
    // frames delivered so far: resubscribing from here re-reads
    // nothing already applied and skips nothing.
    prop_assert_eq!(stream.offset(), boundaries[before.len()]);
    prop_assert!(stream.offset() <= cut as u64);

    stream.push(&wire[cut..]);
    let after = match drain(&mut stream) {
        Ok(frames) => frames,
        Err(e) => panic!("suffix failed: {e}"),
    };
    prop_assert_eq!(before.len() + after.len(), originals.len());
    for (i, got) in before.iter().chain(&after).enumerate() {
        prop_assert_eq!(got.counter, originals[i].counter, "order broken at {}", i);
    }
}

/// Body of `prop_stream_rejects_leading_junk`.
fn check_leading_junk_rejected(junk: &[u8]) {
    // Force a magic mismatch: every wire magic starts with an ASCII
    // 'D' (high bit clear), so setting the high bit can never collide
    // with a valid kind.
    let mut wire = junk.to_vec();
    wire[0] |= 0x80;
    wire.extend_from_slice(&wire_frame(3).encode());
    let mut stream = FrameStream::new(1 << 20);
    stream.push(&wire);
    match stream.next() {
        Err(e) => prop_assert_eq!(e.offset(), 0),
        Ok(got) => prop_assert!(false, "junk decoded: {:?}", got),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entirely arbitrary bytes through the streaming reader, split at
    /// arbitrary chunk boundaries: every outcome is frames-so-far plus
    /// either "need more bytes" or a typed, sticky error — no panic,
    /// and the reported offset never exceeds what was pushed.
    #[test]
    fn prop_stream_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..768),
        cuts in proptest::collection::vec(0usize..768, 0..6),
    ) {
        check_stream_total(&bytes, &cuts);
    }

    /// Chunking invariance: a valid frame sequence decodes to exactly
    /// the frames that were encoded — same kinds, generations,
    /// counters, payloads, each delivered exactly once — no matter
    /// where the reads split.
    #[test]
    fn prop_stream_decodes_are_chunking_invariant(
        count in 1u64..12,
        cuts in proptest::collection::vec(1usize..2048, 0..8),
    ) {
        check_chunking_invariance(count, &cuts);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resumable offsets: cut a valid stream mid-frame and the reader
    /// parks at the start of the incomplete frame ("need more bytes",
    /// not an error); delivering the remainder completes the sequence
    /// with no frame lost or double-applied.
    #[test]
    fn prop_stream_resumes_across_a_torn_boundary(
        count in 1u64..10,
        cut_frac in 0.0f64..1.0,
    ) {
        check_torn_boundary_resume(count, cut_frac);
    }

    /// Junk prepended to a valid frame is a typed `BadMagic` at offset
    /// 0 — the stream refuses to scan forward past garbage, because on
    /// a replication link the only safe recovery is resubscribing.
    #[test]
    fn prop_stream_rejects_leading_junk(
        junk in proptest::collection::vec(any::<u8>(), 4..32),
    ) {
        check_leading_junk_rejected(&junk);
    }
}
