//! End-to-end recovery tests for the feedback store: every torn-write
//! shape the `TornWriter` can inject (plus raw file surgery for the
//! crash points it can't) must recover to exactly the committed-record
//! prefix — never a partial record, never a lost committed one.

use dwqa_store::{FeedbackStore, FsyncPolicy, StoreConfig, StoreError, TornPlan};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh, collision-free scratch directory under the OS temp dir.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("dwqa-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn default_config() -> StoreConfig {
    StoreConfig::builder()
        .checkpoint_every(None)
        .build()
        .unwrap()
}

fn payload(i: u64) -> Vec<u8> {
    format!("txn-{i}-{}", "x".repeat((i as usize % 7) * 11)).into_bytes()
}

#[test]
fn fresh_store_opens_empty_and_reopens_with_committed_records() {
    let dir = scratch("fresh");
    let (mut store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert!(recovery.checkpoint.is_none());
    assert!(recovery.records.is_empty());
    assert_eq!(recovery.generation, 0);
    assert!(!recovery.compacted);

    for i in 0..5 {
        assert_eq!(store.append(&payload(i)).unwrap(), i);
    }
    assert_eq!(store.wal_records(), 5);
    drop(store);

    let (store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.records.len(), 5);
    for (i, record) in recovery.records.iter().enumerate() {
        assert_eq!(record.seq, i as u64);
        assert_eq!(record.payload, payload(i as u64));
    }
    assert_eq!(store.next_seq(), 5);
    assert!(!recovery.compacted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_the_log_and_recovery_replays_only_the_suffix() {
    let dir = scratch("checkpoint");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    for i in 0..3 {
        store.append(&payload(i)).unwrap();
    }
    store.checkpoint(b"snapshot-at-3").unwrap();
    assert_eq!(store.wal_records(), 0);
    assert_eq!(store.generation(), 1);
    for i in 3..5 {
        store.append(&payload(i)).unwrap();
    }
    drop(store);

    let (store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.checkpoint.as_deref(), Some(&b"snapshot-at-3"[..]));
    assert_eq!(recovery.generation, 1);
    assert_eq!(
        recovery.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![3, 4]
    );
    assert_eq!(store.next_seq(), 5, "sequence survives the checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_fault_wedges_the_store_and_recovery_drops_the_partial_record() {
    let dir = scratch("short");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    for i in 0..3 {
        store.append(&payload(i)).unwrap();
    }
    store.set_torn(Some(TornPlan::new(11).with_short_write(1.0)));
    assert!(matches!(
        store.append(&payload(3)),
        Err(StoreError::Torn("short write"))
    ));
    assert!(store.wedged());
    assert!(matches!(store.append(&payload(4)), Err(StoreError::Wedged)));
    assert!(matches!(store.checkpoint(b"s"), Err(StoreError::Wedged)));
    drop(store);

    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.records.len(), 3, "partial record must not surface");
    assert!(recovery.torn_bytes > 0);
    assert!(recovery.compacted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_fault_is_detected_and_truncated_on_recovery() {
    let dir = scratch("flip");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    for i in 0..4 {
        store.append(&payload(i)).unwrap();
    }
    store.set_torn(Some(TornPlan::new(23).with_bit_flip(1.0)));
    assert!(matches!(
        store.append(&payload(4)),
        Err(StoreError::Torn("bit flip"))
    ));
    drop(store);

    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.records.len(), 4);
    assert!(recovery.records.iter().all(|r| r.payload == payload(r.seq)));
    assert!(recovery.torn_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_fail_fault_undoes_the_append_cleanly() {
    let dir = scratch("fsync");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    for i in 0..2 {
        store.append(&payload(i)).unwrap();
    }
    let len_before = store.wal_len();
    store.set_torn(Some(TornPlan::new(5).with_fsync_fail(1.0)));
    assert!(matches!(
        store.append(&payload(2)),
        Err(StoreError::Torn("fsync failed"))
    ));
    assert!(store.wedged());
    drop(store);

    let (store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.records.len(), 2);
    assert_eq!(recovery.torn_bytes, 0, "undone append leaves no torn tail");
    assert!(!recovery.compacted);
    assert_eq!(store.wal_len(), len_before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_fault_is_benign_and_deduplicated_on_recovery() {
    let dir = scratch("dup");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    store.set_torn(Some(TornPlan::new(9).with_duplicate(1.0)));
    for i in 0..3 {
        assert_eq!(
            store.append(&payload(i)).unwrap(),
            i,
            "duplicates are benign"
        );
    }
    assert!(!store.wedged());
    drop(store);

    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.duplicates_skipped, 3);
    assert_eq!(
        recovery.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    assert!(recovery.compacted);

    // Recovery compacted the log: a second open is pristine.
    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.records.len(), 3);
    assert!(!recovery.compacted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_generation_records_are_skipped_after_an_interrupted_checkpoint() {
    let dir = scratch("stale");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    for i in 0..2 {
        store.append(&payload(i)).unwrap();
    }
    // Simulate a crash between checkpoint rename and WAL truncation:
    // save the generation-0 log bytes and put them back afterwards.
    let old_log = std::fs::read(store.wal_path()).unwrap();
    store.checkpoint(b"snapshot-at-2").unwrap();
    std::fs::write(store.wal_path(), &old_log).unwrap();
    drop(store);

    let (mut store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.stale_skipped, 2);
    assert!(recovery.records.is_empty());
    assert_eq!(recovery.checkpoint.as_deref(), Some(&b"snapshot-at-2"[..]));
    assert!(recovery.compacted);
    // The store still appends fine at the new generation.
    assert_eq!(store.append(&payload(2)).unwrap(), 2);
    drop(store);
    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(
        recovery.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![2]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_refuses_to_open() {
    let dir = scratch("badckpt");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    store.append(&payload(0)).unwrap();
    store.checkpoint(b"good").unwrap();
    let path = store.checkpoint_path();
    drop(store);

    // Flipped byte inside the checkpoint payload.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        FeedbackStore::open(&dir, default_config()),
        Err(StoreError::CorruptCheckpoint(_))
    ));

    // Truncated checkpoint file.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        FeedbackStore::open(&dir, default_config()),
        Err(StoreError::CorruptCheckpoint(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leftover_checkpoint_tmp_garbage_is_discarded_on_open() {
    let dir = scratch("tmpjunk");
    let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
    store.append(&payload(0)).unwrap();
    store.checkpoint(b"real").unwrap();
    let tmp = store.checkpoint_tmp_path();
    drop(store);
    std::fs::write(&tmp, b"garbage from a crashed checkpoint").unwrap();

    let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
    assert_eq!(recovery.checkpoint.as_deref(), Some(&b"real"[..]));
    assert!(!tmp.exists(), "stale tmp file should be removed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_append_is_rejected_without_wedging() {
    let dir = scratch("oversize");
    let config = StoreConfig::builder()
        .max_record_bytes(64)
        .checkpoint_every(None)
        .build()
        .unwrap();
    let (mut store, _) = FeedbackStore::open(&dir, config.clone()).unwrap();
    let big = vec![7u8; 65];
    assert!(matches!(
        store.append(&big),
        Err(StoreError::TooLarge { len: 65, max: 64 })
    ));
    assert!(!store.wedged());
    assert_eq!(store.append(b"small").unwrap(), 0);
    drop(store);
    let (_store, recovery) = FeedbackStore::open(&dir, config).unwrap();
    assert_eq!(recovery.records.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_n_policy_amortizes_fsyncs() {
    use dwqa_obs::MetricsRegistry;
    use std::sync::Arc;

    let dir = scratch("everyn");
    let config = StoreConfig::builder()
        .fsync(FsyncPolicy::EveryN(4))
        .checkpoint_every(None)
        .build()
        .unwrap();
    let (mut store, _) = FeedbackStore::open(&dir, config).unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    {
        let _obs = dwqa_obs::observe(Some(Arc::clone(&registry)), None, "test", "everyn");
        for i in 0..10 {
            store.append(&payload(i)).unwrap();
        }
    }
    assert_eq!(
        registry.counter_value(dwqa_obs::names::STORE_WAL_FSYNCS),
        2,
        "10 appends at EveryN(4) => fsync at the 4th and 8th"
    );
    assert_eq!(
        registry.counter_value(dwqa_obs::names::STORE_WAL_APPENDS),
        10
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_due_follows_the_configured_cadence() {
    let dir = scratch("due");
    let config = StoreConfig::builder()
        .checkpoint_every(Some(3))
        .build()
        .unwrap();
    let (mut store, _) = FeedbackStore::open(&dir, config).unwrap();
    for i in 0..2 {
        store.append(&payload(i)).unwrap();
        assert!(!store.checkpoint_due());
    }
    store.append(&payload(2)).unwrap();
    assert!(store.checkpoint_due());
    store.checkpoint(b"s").unwrap();
    assert!(!store.checkpoint_due());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chop the WAL at ANY byte length: recovery must yield exactly a
    /// prefix of the committed records, with every payload intact.
    #[test]
    fn prop_arbitrary_truncation_recovers_a_committed_prefix(
        count in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("prop-trunc");
        let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
        for i in 0..count as u64 {
            store.append(&payload(i)).unwrap();
        }
        let wal_path = store.wal_path();
        let full = store.wal_len();
        drop(store);
        let cut = (full as f64 * cut_frac) as u64;
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..cut as usize]).unwrap();

        let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
        prop_assert!(recovery.records.len() <= count);
        for (i, record) in recovery.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64);
            prop_assert_eq!(&record.payload, &payload(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip any single byte of the WAL: recovery still yields a prefix
    /// of the committed records with intact payloads (the flipped
    /// record and everything after it are truncated).
    #[test]
    fn prop_single_byte_corruption_never_surfaces_a_wrong_payload(
        count in 1usize..8,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let dir = scratch("prop-flip");
        let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
        for i in 0..count as u64 {
            store.append(&payload(i)).unwrap();
        }
        let wal_path = store.wal_path();
        drop(store);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&wal_path, &bytes).unwrap();

        let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
        prop_assert!(recovery.records.len() <= count);
        for (i, record) in recovery.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64);
            prop_assert_eq!(&record.payload, &payload(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Under any chaos seed/rate, appends either succeed (and survive
    /// reopen) or wedge the store (and the failed record never
    /// surfaces): recovered records == exactly the acknowledged ones.
    #[test]
    fn prop_chaos_appends_recover_exactly_the_acknowledged_records(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.6,
    ) {
        let dir = scratch("prop-chaos");
        let (mut store, _) = FeedbackStore::open(&dir, default_config()).unwrap();
        store.set_torn(Some(TornPlan::chaos(seed, rate)));
        let mut acknowledged = Vec::new();
        for i in 0..16u64 {
            match store.append(&payload(i)) {
                Ok(seq) => acknowledged.push(seq),
                Err(StoreError::Torn(_)) | Err(StoreError::Wedged) => break,
                Err(other) => prop_assert!(false, "unexpected append error: {}", other),
            }
        }
        drop(store);
        let (_store, recovery) = FeedbackStore::open(&dir, default_config()).unwrap();
        prop_assert_eq!(
            recovery.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            acknowledged
        );
        prop_assert!(recovery.records.iter().all(|r| r.payload == payload(r.seq)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
