//! Typed columnar storage.
//!
//! Each column stores its values natively (no per-cell boxing); text
//! columns are dictionary-encoded, which matters because dimension
//! descriptors ("Barcelona", "El Prat") repeat across millions of fact
//! rows. Nulls are represented with `Option` slots.

use crate::error::{Result, WarehouseError};
use crate::value::Value;
use dwqa_common::Date;
use dwqa_mdmodel::DataType;
use std::collections::HashMap;

/// A dictionary-encoded string column.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
    codes: Vec<Option<u32>>,
}

impl DictColumn {
    fn encode(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.lookup.get(s) {
            return c;
        }
        let code = u32::try_from(self.dict.len()).expect("dictionary overflow");
        self.dict.push(s.to_owned());
        self.lookup.insert(s.to_owned(), code);
        code
    }

    /// The distinct strings stored, in first-seen order.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    fn get(&self, row: usize) -> Option<&str> {
        self.codes[row].map(|c| self.dict[c as usize].as_str())
    }
}

/// A typed column of the engine.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<Option<i64>>),
    /// 64-bit floats.
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded text.
    Text(DictColumn),
    /// Dates stored as day numbers from the civil epoch.
    Date(Vec<Option<i64>>),
    /// Booleans.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(ty: DataType) -> Column {
        match ty {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Text => Column::Text(DictColumn::default()),
            DataType::Date => Column::Date(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Text(_) => DataType::Text,
            Column::Date(_) => DataType::Date,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Text(d) => d.codes.len(),
            Column::Date(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, enforcing type conformance (ints widen into float
    /// columns).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if !value.conforms_to(self.data_type()) {
            return Err(WarehouseError::TypeMismatch {
                expected: self.data_type(),
                got: value.clone(),
            });
        }
        match (self, value) {
            (Column::Int(v), Value::Int(i)) => v.push(Some(*i)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(f)) => v.push(Some(*f)),
            (Column::Float(v), Value::Int(i)) => v.push(Some(*i as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Text(d), Value::Text(s)) => {
                let code = d.encode(s);
                d.codes.push(Some(code));
            }
            (Column::Text(d), Value::Null) => d.codes.push(None),
            (Column::Date(v), Value::Date(date)) => v.push(Some(date.days_from_epoch())),
            (Column::Date(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(*b)),
            (Column::Bool(v), Value::Null) => v.push(None),
            _ => unreachable!("conforms_to covered all combinations"),
        }
        Ok(())
    }

    /// Reads a row back as a [`Value`].
    ///
    /// # Panics
    /// Panics if `row >= self.len()`.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map_or(Value::Null, Value::Int),
            Column::Float(v) => v[row].map_or(Value::Null, Value::Float),
            Column::Text(d) => d
                .get(row)
                .map_or(Value::Null, |s| Value::Text(s.to_owned())),
            Column::Date(v) => v[row].map_or(Value::Null, |days| {
                Value::Date(Date::from_days_from_epoch(days))
            }),
            Column::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
        }
    }

    /// Fast numeric view for aggregation; `None` for null or non-numeric.
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v[row].map(|i| i as f64),
            Column::Float(v) => v[row],
            _ => None,
        }
    }

    /// The dictionary of a text column, if this is one.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Text(d) => Some(d),
            _ => None,
        }
    }

    /// A borrowed numeric view over the column, resolved once so the
    /// compiled roll-up scan avoids re-matching the enum per row.
    pub fn numeric(&self) -> NumericSlice<'_> {
        match self {
            Column::Int(v) => NumericSlice::Int(v),
            Column::Float(v) => NumericSlice::Float(v),
            _ => NumericSlice::Opaque,
        }
    }
}

/// A borrowed numeric view of a [`Column`]; non-numeric columns yield
/// [`NumericSlice::Opaque`], which reads as `None` everywhere — the same
/// answer [`Column::get_f64`] gives.
#[derive(Debug, Clone, Copy)]
pub enum NumericSlice<'a> {
    /// Integers, widened to `f64` on read.
    Int(&'a [Option<i64>]),
    /// Floats, read natively.
    Float(&'a [Option<f64>]),
    /// Text/date/bool — never numeric.
    Opaque,
}

impl NumericSlice<'_> {
    /// The numeric value at `row`, or `None` for null or non-numeric.
    #[inline]
    pub fn get(&self, row: usize) -> Option<f64> {
        match self {
            NumericSlice::Int(v) => v[row].map(|i| i as f64),
            NumericSlice::Float(v) => v[row],
            NumericSlice::Opaque => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_get_round_trip_all_types() {
        let cases = vec![
            (DataType::Int, Value::Int(42)),
            (DataType::Float, Value::Float(2.5)),
            (DataType::Text, Value::text("Barcelona")),
            (DataType::Date, Value::date(2004, 1, 31).unwrap()),
            (DataType::Bool, Value::Bool(true)),
        ];
        for (ty, v) in cases {
            let mut c = Column::new(ty);
            c.push(&v).unwrap();
            c.push(&Value::Null).unwrap();
            assert_eq!(c.get(0), v);
            assert_eq!(c.get(1), Value::Null);
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(&Value::Int(7)).unwrap();
        assert_eq!(c.get(0), Value::Float(7.0));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(DataType::Int);
        let err = c.push(&Value::text("oops")).unwrap_err();
        assert!(matches!(err, WarehouseError::TypeMismatch { .. }));
        assert!(c.is_empty());
    }

    #[test]
    fn dictionary_deduplicates() {
        let mut c = Column::new(DataType::Text);
        for s in ["Barcelona", "Madrid", "Barcelona", "Barcelona"] {
            c.push(&Value::text(s)).unwrap();
        }
        let dict = c.as_dict().unwrap();
        assert_eq!(dict.dictionary(), ["Barcelona", "Madrid"]);
        assert_eq!(c.get(2), Value::text("Barcelona"));
    }

    proptest! {
        #[test]
        fn prop_int_column_round_trips(values in proptest::collection::vec(proptest::option::of(any::<i64>()), 0..100)) {
            let mut c = Column::new(DataType::Int);
            for v in &values {
                let val = v.map_or(Value::Null, Value::Int);
                c.push(&val).unwrap();
            }
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v.map_or(Value::Null, Value::Int));
            }
        }

        #[test]
        fn prop_text_column_round_trips(values in proptest::collection::vec("[a-zA-Z ]{0,10}", 0..100)) {
            let mut c = Column::new(DataType::Text);
            for v in &values {
                c.push(&Value::text(v.clone())).unwrap();
            }
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), Value::text(v.clone()));
            }
        }
    }
}
