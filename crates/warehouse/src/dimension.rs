//! Denormalised dimension tables with surrogate keys.

use crate::column::Column;
use crate::error::{Result, WarehouseError};
use crate::value::Value;
use dwqa_mdmodel::Dimension;
use std::collections::HashMap;

/// Surrogate key of a dimension member (index into the dimension table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemberKey(pub(crate) u32);

impl MemberKey {
    /// The raw row index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A star-schema dimension table.
///
/// One row per member of the *base* level; every hierarchy level
/// contributes its descriptor and attributes as columns (e.g. the Airport
/// dimension has columns `Airport.airport_name`, `Airport.iata_code`,
/// `City.city_name`, `City.population`, `State.state_name`,
/// `Country.country_name`). Members are deduplicated by their base
/// descriptor value.
#[derive(Debug, Clone)]
pub struct DimensionTable {
    model: Dimension,
    /// Parallel to the flattened (level, attribute) layout below.
    columns: Vec<Column>,
    /// Flattened layout: (level index, qualified name).
    layout: Vec<(usize, String)>,
    /// base descriptor value → key.
    index: HashMap<Value, MemberKey>,
}

impl DimensionTable {
    /// Creates an empty table for a dimension model.
    pub fn new(model: &Dimension) -> DimensionTable {
        let mut columns = Vec::new();
        let mut layout = Vec::new();
        for (li, level) in model.levels.iter().enumerate() {
            columns.push(Column::new(level.descriptor.data_type));
            layout.push((li, format!("{}.{}", level.name, level.descriptor.name)));
            for a in &level.attributes {
                columns.push(Column::new(a.data_type));
                layout.push((li, format!("{}.{}", level.name, a.name)));
            }
        }
        DimensionTable {
            model: model.clone(),
            columns,
            layout,
            index: HashMap::new(),
        }
    }

    /// The dimension model this table materialises.
    pub fn model(&self) -> &Dimension {
        &self.model
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Whether the table has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the position of an unqualified attribute name by searching
    /// descriptors first, then attributes, base level outward.
    fn position_of(&self, name: &str) -> Option<usize> {
        // Exact qualified match ("City.city_name") wins.
        if let Some(pos) = self.layout.iter().position(|(_, q)| q == name) {
            return Some(pos);
        }
        self.layout
            .iter()
            .position(|(_, q)| q.split('.').nth(1) == Some(name))
    }

    /// Column position of a level's descriptor.
    fn descriptor_position(&self, level_idx: usize) -> usize {
        self.layout
            .iter()
            .position(|(li, q)| {
                *li == level_idx
                    && q.split('.').nth(1)
                        == Some(self.model.levels[level_idx].descriptor.name.as_str())
            })
            .expect("every level has a descriptor column")
    }

    /// The storage column of a level's descriptor (for plan compilation,
    /// which resolves the column once instead of per fact row).
    pub(crate) fn descriptor_column(&self, level_idx: usize) -> &Column {
        &self.columns[self.descriptor_position(level_idx)]
    }

    /// The storage column of an attribute (qualified or unqualified
    /// name), resolved with the same precedence as
    /// [`DimensionTable::attribute_value`].
    pub(crate) fn attribute_column(&self, name: &str) -> Option<&Column> {
        self.position_of(name).map(|pos| &self.columns[pos])
    }

    /// Looks up a member by its base descriptor value.
    pub fn lookup(&self, base_descriptor: &Value) -> Option<MemberKey> {
        self.index.get(base_descriptor).copied()
    }

    /// Inserts a member described by `(attribute name, value)` pairs, or
    /// returns the existing key if the base descriptor is already present.
    ///
    /// Attribute names may be unqualified (`"city_name"`) or qualified
    /// (`"City.city_name"`). The base level descriptor is mandatory; other
    /// slots default to `Null`.
    pub fn lookup_or_insert(&mut self, values: &[(String, Value)]) -> Result<MemberKey> {
        let base_pos = self.descriptor_position(0);
        let mut row: Vec<Value> = vec![Value::Null; self.columns.len()];
        for (name, value) in values {
            let pos = self
                .position_of(name)
                .ok_or_else(|| WarehouseError::UnknownAttribute {
                    level: self.model.name.clone(),
                    attribute: name.clone(),
                })?;
            row[pos] = value.clone();
        }
        let base = row[base_pos].clone();
        if base.is_null() {
            return Err(WarehouseError::IncompleteRow(format!(
                "dimension {:?}: base descriptor {:?} missing",
                self.model.name, self.model.levels[0].descriptor.name
            )));
        }
        if let Some(key) = self.index.get(&base) {
            return Ok(*key);
        }
        // Validate all cells before mutating any column so a failed insert
        // leaves the table unchanged.
        for (pos, v) in row.iter().enumerate() {
            if !v.conforms_to(self.columns[pos].data_type()) {
                return Err(WarehouseError::TypeMismatch {
                    expected: self.columns[pos].data_type(),
                    got: v.clone(),
                });
            }
        }
        for (pos, v) in row.iter().enumerate() {
            self.columns[pos].push(v).expect("validated before pushing");
        }
        let key = MemberKey(u32::try_from(self.len() - 1).expect("dimension overflow"));
        self.index.insert(base, key);
        Ok(key)
    }

    /// The descriptor value of `key` at the named level (how roll-up reads
    /// a member at coarser granularity).
    pub fn level_value(&self, key: MemberKey, level: &str) -> Result<Value> {
        let (level_id, _) =
            self.model
                .level(level)
                .ok_or_else(|| WarehouseError::UnknownLevel {
                    dimension: self.model.name.clone(),
                    level: level.to_owned(),
                })?;
        let pos = self.descriptor_position(level_id.index());
        Ok(self.columns[pos].get(key.index()))
    }

    /// An arbitrary attribute value of a member (qualified or unqualified
    /// attribute name).
    pub fn attribute_value(&self, key: MemberKey, attribute: &str) -> Result<Value> {
        let pos = self
            .position_of(attribute)
            .ok_or_else(|| WarehouseError::UnknownAttribute {
                level: self.model.name.clone(),
                attribute: attribute.to_owned(),
            })?;
        Ok(self.columns[pos].get(key.index()))
    }

    /// Iterates all member keys.
    pub fn keys(&self) -> impl Iterator<Item = MemberKey> {
        (0..self.len() as u32).map(MemberKey)
    }

    /// The qualified column names, in storage order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.layout.iter().map(|(_, q)| q.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_mdmodel::last_minute_sales;

    fn airport_table() -> DimensionTable {
        let schema = last_minute_sales();
        let (_, dim) = schema.dimension("Airport").unwrap();
        DimensionTable::new(dim)
    }

    fn el_prat() -> Vec<(String, Value)> {
        vec![
            ("airport_name".into(), Value::text("El Prat")),
            ("iata_code".into(), Value::text("BCN")),
            ("city_name".into(), Value::text("Barcelona")),
            ("state_name".into(), Value::text("Catalonia")),
            ("country_name".into(), Value::text("Spain")),
        ]
    }

    #[test]
    fn insert_and_lookup_round_trip() {
        let mut t = airport_table();
        let key = t.lookup_or_insert(&el_prat()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&Value::text("El Prat")), Some(key));
        assert_eq!(
            t.level_value(key, "City").unwrap(),
            Value::text("Barcelona")
        );
        assert_eq!(t.level_value(key, "Country").unwrap(), Value::text("Spain"));
        assert_eq!(
            t.attribute_value(key, "iata_code").unwrap(),
            Value::text("BCN")
        );
    }

    #[test]
    fn duplicate_base_descriptor_is_deduplicated() {
        let mut t = airport_table();
        let a = t.lookup_or_insert(&el_prat()).unwrap();
        let b = t.lookup_or_insert(&el_prat()).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn missing_base_descriptor_is_rejected() {
        let mut t = airport_table();
        let err = t
            .lookup_or_insert(&[("city_name".into(), Value::text("Barcelona"))])
            .unwrap_err();
        assert!(matches!(err, WarehouseError::IncompleteRow(_)));
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let mut t = airport_table();
        let err = t
            .lookup_or_insert(&[("runway_count".into(), Value::Int(2))])
            .unwrap_err();
        assert!(matches!(err, WarehouseError::UnknownAttribute { .. }));
    }

    #[test]
    fn type_mismatch_leaves_table_unchanged() {
        let mut t = airport_table();
        let err = t
            .lookup_or_insert(&[
                ("airport_name".into(), Value::text("JFK")),
                ("population".into(), Value::text("lots")),
            ])
            .unwrap_err();
        assert!(matches!(err, WarehouseError::TypeMismatch { .. }));
        assert!(t.is_empty());
    }

    #[test]
    fn qualified_names_disambiguate() {
        let mut t = airport_table();
        let key = t
            .lookup_or_insert(&[
                ("Airport.airport_name".into(), Value::text("JFK")),
                ("City.city_name".into(), Value::text("New York")),
            ])
            .unwrap();
        assert_eq!(t.level_value(key, "City").unwrap(), Value::text("New York"));
        assert_eq!(t.level_value(key, "State").unwrap(), Value::Null);
    }

    #[test]
    fn column_names_are_qualified() {
        let t = airport_table();
        let names: Vec<&str> = t.column_names().collect();
        assert!(names.contains(&"Airport.airport_name"));
        assert!(names.contains(&"City.population"));
        assert!(names.contains(&"Country.country_name"));
    }
}
