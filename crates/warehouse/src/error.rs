//! Errors reported by the warehouse engine.

use crate::value::Value;
use dwqa_mdmodel::DataType;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, WarehouseError>;

/// An error from storage, ETL or query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum WarehouseError {
    /// A value did not conform to its column type.
    TypeMismatch {
        /// The column's declared type.
        expected: DataType,
        /// The offending value.
        got: Value,
    },
    /// A fact name was not found in the schema.
    UnknownFact(String),
    /// A dimension name was not found in the schema.
    UnknownDimension(String),
    /// A role name was not found on the fact.
    UnknownRole {
        /// The fact queried.
        fact: String,
        /// The missing role.
        role: String,
    },
    /// A level name was not found in the dimension.
    UnknownLevel {
        /// The dimension.
        dimension: String,
        /// The missing level.
        level: String,
    },
    /// A measure name was not found on the fact.
    UnknownMeasure {
        /// The fact queried.
        fact: String,
        /// The missing measure.
        measure: String,
    },
    /// An attribute name was not found on a level.
    UnknownAttribute {
        /// The level searched.
        level: String,
        /// The missing attribute.
        attribute: String,
    },
    /// The requested aggregate is illegal for the measure's additivity
    /// (e.g. SUM over a non-additive rate, or SUM over semi-additive
    /// temperatures).
    IllegalAggregate {
        /// The measure.
        measure: String,
        /// Why the aggregate was refused.
        reason: String,
    },
    /// An ETL row was structurally incomplete.
    IncompleteRow(String),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: column is {expected}, value is {got:?}")
            }
            WarehouseError::UnknownFact(name) => write!(f, "unknown fact {name:?}"),
            WarehouseError::UnknownDimension(name) => write!(f, "unknown dimension {name:?}"),
            WarehouseError::UnknownRole { fact, role } => {
                write!(f, "fact {fact:?} has no role {role:?}")
            }
            WarehouseError::UnknownLevel { dimension, level } => {
                write!(f, "dimension {dimension:?} has no level {level:?}")
            }
            WarehouseError::UnknownMeasure { fact, measure } => {
                write!(f, "fact {fact:?} has no measure {measure:?}")
            }
            WarehouseError::UnknownAttribute { level, attribute } => {
                write!(f, "level {level:?} has no attribute {attribute:?}")
            }
            WarehouseError::IllegalAggregate { measure, reason } => {
                write!(f, "illegal aggregate on measure {measure:?}: {reason}")
            }
            WarehouseError::IncompleteRow(why) => write!(f, "incomplete ETL row: {why}"),
        }
    }
}

impl std::error::Error for WarehouseError {}
