//! ETL row model and load reports.
//!
//! A [`FactRow`] is the unit the loader consumes: measure values plus, for
//! each dimension role, a member specification (attribute/value pairs).
//! [`Warehouse::load`](crate::Warehouse::load) resolves members (creating
//! them on first sight), appends the fact row, and reports per-row
//! [`Rejection`]s instead of aborting the batch — the paper's Step 5 feeds
//! Web-extracted data, where individual dirty rows are expected.

use crate::value::Value;
use dwqa_common::Date;
use dwqa_mdmodel::{DataType, Dimension};
use serde::{Deserialize, Serialize};

/// One incoming fact row.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FactRow {
    /// `(measure name, value)` pairs.
    pub measures: Vec<(String, Value)>,
    /// `(role name, member spec)` pairs; each member spec is a list of
    /// `(attribute name, value)` pairs as accepted by
    /// [`crate::DimensionTable::lookup_or_insert`].
    pub roles: Vec<(String, Vec<(String, Value)>)>,
}

/// Fluent builder for [`FactRow`].
#[derive(Debug, Default)]
pub struct FactRowBuilder {
    row: FactRow,
}

impl FactRowBuilder {
    /// Starts an empty row.
    pub fn new() -> FactRowBuilder {
        FactRowBuilder::default()
    }

    /// Sets a measure value.
    pub fn measure(&mut self, name: &str, value: Value) -> &mut Self {
        self.row.measures.push((name.to_owned(), value));
        self
    }

    /// Sets the member for a dimension role.
    pub fn role_member(&mut self, role: &str, spec: &[(&str, Value)]) -> &mut Self {
        self.row.roles.push((
            role.to_owned(),
            spec.iter()
                .map(|(n, v)| ((*n).to_owned(), v.clone()))
                .collect(),
        ));
        self
    }

    /// Finishes the row.
    pub fn build(&mut self) -> FactRow {
        std::mem::take(&mut self.row)
    }
}

/// Why a row was rejected during a load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// Zero-based position of the row in the batch.
    pub row: usize,
    /// Human-readable reason.
    pub reason: String,
}

/// Outcome of a batch load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EtlReport {
    /// Rows appended to the fact table.
    pub inserted: usize,
    /// Rows skipped, with reasons.
    pub rejected: Vec<Rejection>,
    /// Dimension members created during the load, per dimension name.
    pub new_members: Vec<(String, usize)>,
}

impl EtlReport {
    /// Total rows seen by the load.
    pub fn total(&self) -> usize {
        self.inserted + self.rejected.len()
    }
}

/// Fills calendar roll-up levels of a date dimension from its base date.
///
/// ETL convention: if the dimension's base descriptor has type `Date` and a
/// date value is present, missing parent levels named (case-insensitively)
/// `Month`, `Quarter` or `Year` are derived as `"YYYY-MM"`, `"YYYY-Qn"` and
/// the integer year. This is what lets the loader accept bare dates while
/// roll-up queries still group by month — the granularity the paper's
/// weather analysis needs ("January of 2004").
pub fn autofill_date_levels(model: &Dimension, spec: &mut Vec<(String, Value)>) {
    let base = &model.levels[0];
    if base.descriptor.data_type != DataType::Date {
        return;
    }
    let date: Option<Date> = spec
        .iter()
        .find(|(name, _)| {
            name == &base.descriptor.name
                || name == &format!("{}.{}", base.name, base.descriptor.name)
        })
        .and_then(|(_, v)| v.as_date());
    let Some(date) = date else { return };
    for level in &model.levels[1..] {
        let already = spec.iter().any(|(name, _)| {
            name == &level.descriptor.name
                || name == &format!("{}.{}", level.name, level.descriptor.name)
        });
        if already {
            continue;
        }
        let value = match level.name.to_ascii_lowercase().as_str() {
            "month" => Some(Value::text(format!(
                "{:04}-{:02}",
                date.year(),
                date.month().number()
            ))),
            "quarter" => Some(Value::text(format!(
                "{:04}-Q{}",
                date.year(),
                (date.month().number() - 1) / 3 + 1
            ))),
            "year" => Some(Value::Int(i64::from(date.year()))),
            _ => None,
        };
        if let Some(value) = value {
            spec.push((level.descriptor.name.clone(), value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_mdmodel::last_minute_sales;

    #[test]
    fn builder_collects_measures_and_roles() {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(10.0))
            .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
        let row = b.build();
        assert_eq!(row.measures.len(), 1);
        assert_eq!(row.roles.len(), 1);
        // The builder is reusable after build().
        assert_eq!(b.build(), FactRow::default());
    }

    #[test]
    fn date_levels_are_derived() {
        let schema = last_minute_sales();
        let (_, date_dim) = schema.dimension("Date").unwrap();
        let mut spec = vec![("date".to_owned(), Value::date(2004, 1, 31).unwrap())];
        autofill_date_levels(date_dim, &mut spec);
        let get = |name: &str| spec.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
        assert_eq!(get("month"), Some(Value::text("2004-01")));
        assert_eq!(get("quarter"), Some(Value::text("2004-Q1")));
        assert_eq!(get("year"), Some(Value::Int(2004)));
    }

    #[test]
    fn autofill_respects_explicit_values() {
        let schema = last_minute_sales();
        let (_, date_dim) = schema.dimension("Date").unwrap();
        let mut spec = vec![
            ("date".to_owned(), Value::date(2004, 4, 1).unwrap()),
            ("month".to_owned(), Value::text("April 2004")),
        ];
        autofill_date_levels(date_dim, &mut spec);
        let months: Vec<&Value> = spec
            .iter()
            .filter(|(n, _)| n == "month")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(months, [&Value::text("April 2004")]);
        assert_eq!(
            spec.iter().find(|(n, _)| n == "quarter").map(|(_, v)| v),
            Some(&Value::text("2004-Q2"))
        );
    }

    #[test]
    fn autofill_ignores_non_date_dimensions() {
        let schema = last_minute_sales();
        let (_, airport) = schema.dimension("Airport").unwrap();
        let mut spec = vec![("airport_name".to_owned(), Value::text("JFK"))];
        autofill_date_levels(airport, &mut spec);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn quarter_boundaries() {
        let schema = last_minute_sales();
        let (_, date_dim) = schema.dimension("Date").unwrap();
        for (m, q) in [(1, "Q1"), (3, "Q1"), (4, "Q2"), (12, "Q4")] {
            let mut spec = vec![("date".to_owned(), Value::date(2004, m, 1).unwrap())];
            autofill_date_levels(date_dim, &mut spec);
            let quarter = spec
                .iter()
                .find(|(n, _)| n == "quarter")
                .map(|(_, v)| v.to_string())
                .unwrap();
            assert_eq!(quarter, format!("2004-{q}"));
        }
    }
}
