//! Fact tables: measures plus surrogate keys into dimensions.

use crate::column::Column;
use crate::dimension::MemberKey;
use crate::error::{Result, WarehouseError};
use crate::value::Value;
use dwqa_mdmodel::Fact;

/// A fact table materialising one `«Fact»` class.
///
/// Storage is columnar: one `u32` surrogate-key column per dimension role
/// and one typed column per measure. Rows are append-only, as in a
/// classical warehouse load.
#[derive(Debug, Clone)]
pub struct FactTable {
    model: Fact,
    role_keys: Vec<Vec<u32>>,
    measures: Vec<Column>,
}

impl FactTable {
    /// Creates an empty fact table for the model.
    pub fn new(model: &Fact) -> FactTable {
        FactTable {
            role_keys: vec![Vec::new(); model.roles.len()],
            measures: model
                .measures
                .iter()
                .map(|m| Column::new(m.data_type))
                .collect(),
            model: model.clone(),
        }
    }

    /// The fact model.
    pub fn model(&self) -> &Fact {
        &self.model
    }

    /// Number of fact rows.
    pub fn len(&self) -> usize {
        self.role_keys.first().map_or(0, Vec::len)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row. `keys` must be ordered like `model.roles`, and
    /// `measure_values` like `model.measures`.
    pub fn insert(&mut self, keys: &[MemberKey], measure_values: &[Value]) -> Result<()> {
        if keys.len() != self.role_keys.len() {
            return Err(WarehouseError::IncompleteRow(format!(
                "fact {:?}: expected {} role keys, got {}",
                self.model.name,
                self.role_keys.len(),
                keys.len()
            )));
        }
        if measure_values.len() != self.measures.len() {
            return Err(WarehouseError::IncompleteRow(format!(
                "fact {:?}: expected {} measures, got {}",
                self.model.name,
                self.measures.len(),
                measure_values.len()
            )));
        }
        // Validate measures before mutating anything.
        for (col, v) in self.measures.iter().zip(measure_values) {
            if !v.conforms_to(col.data_type()) {
                return Err(WarehouseError::TypeMismatch {
                    expected: col.data_type(),
                    got: v.clone(),
                });
            }
        }
        for (col, key) in self.role_keys.iter_mut().zip(keys) {
            col.push(key.0);
        }
        for (col, v) in self.measures.iter_mut().zip(measure_values) {
            col.push(v).expect("validated before pushing");
        }
        Ok(())
    }

    /// Index of a role by name.
    pub fn role_index(&self, role: &str) -> Result<usize> {
        self.model
            .roles
            .iter()
            .position(|r| r.role == role)
            .ok_or_else(|| WarehouseError::UnknownRole {
                fact: self.model.name.clone(),
                role: role.to_owned(),
            })
    }

    /// Index of a measure by name.
    pub fn measure_index(&self, measure: &str) -> Result<usize> {
        self.model
            .measures
            .iter()
            .position(|m| m.name == measure)
            .ok_or_else(|| WarehouseError::UnknownMeasure {
                fact: self.model.name.clone(),
                measure: measure.to_owned(),
            })
    }

    /// The surrogate key of `row` for the role at `role_idx`.
    pub fn role_key(&self, row: usize, role_idx: usize) -> MemberKey {
        MemberKey(self.role_keys[role_idx][row])
    }

    /// The whole surrogate-key column of a role — the compiled roll-up
    /// scan walks this slice directly instead of calling
    /// [`FactTable::role_key`] per row.
    pub fn role_key_column(&self, role_idx: usize) -> &[u32] {
        &self.role_keys[role_idx]
    }

    /// The measure column at `measure_idx`.
    pub fn measure_column(&self, measure_idx: usize) -> &Column {
        &self.measures[measure_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_mdmodel::last_minute_sales;

    fn table() -> FactTable {
        let schema = last_minute_sales();
        let (_, fact) = schema.fact("Last Minute Sales").unwrap();
        FactTable::new(fact)
    }

    fn keys(n: u32) -> Vec<MemberKey> {
        (0..n).map(MemberKey).collect()
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert(
            &keys(4),
            &[Value::Float(199.0), Value::Float(450.0), Value::Float(0.7)],
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        let price_idx = t.measure_index("price").unwrap();
        assert_eq!(t.measure_column(price_idx).get(0), Value::Float(199.0));
        let dest = t.role_index("Destination").unwrap();
        assert_eq!(t.role_key(0, dest), MemberKey(1));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = table();
        assert!(matches!(
            t.insert(
                &keys(2),
                &[Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)]
            ),
            Err(WarehouseError::IncompleteRow(_))
        ));
        assert!(matches!(
            t.insert(&keys(4), &[Value::Float(1.0)]),
            Err(WarehouseError::IncompleteRow(_))
        ));
        assert!(t.is_empty());
    }

    #[test]
    fn measure_type_checked_atomically() {
        let mut t = table();
        let err = t
            .insert(
                &keys(4),
                &[Value::Float(1.0), Value::text("oops"), Value::Float(3.0)],
            )
            .unwrap_err();
        assert!(matches!(err, WarehouseError::TypeMismatch { .. }));
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_names_reported() {
        let t = table();
        assert!(matches!(
            t.role_index("Layover"),
            Err(WarehouseError::UnknownRole { .. })
        ));
        assert!(matches!(
            t.measure_index("profit"),
            Err(WarehouseError::UnknownMeasure { .. })
        ));
    }
}
