//! A small columnar OLAP data-warehouse engine.
//!
//! This crate is the structured half of the paper's architecture: the DW
//! that "stores data extracted from the various operational databases of an
//! organization" and that Step 5 of the integration model feeds with the
//! answers the QA system extracts from the Web.
//!
//! It materialises a [`dwqa_mdmodel::Schema`] as:
//!
//! * [`DimensionTable`]s — one row per member of the *base* level, carrying
//!   the descriptor and attributes of every hierarchy level (a denormalised
//!   star-schema dimension), addressed by surrogate keys;
//! * [`FactTable`]s — one typed column per measure and one surrogate-key
//!   column per dimension role;
//! * an ETL loader ([`Warehouse::load`]) that resolves or creates dimension
//!   members and appends fact rows, reporting per-row rejections;
//! * a cube query engine ([`CubeQuery`]) with slice/dice filters, group-by
//!   at any hierarchy level (roll-up / drill-down), and hash aggregation
//!   (SUM / AVG / MIN / MAX / COUNT) that respects measure additivity.
//!
//! ```
//! use dwqa_mdmodel::last_minute_sales;
//! use dwqa_warehouse::{Warehouse, FactRowBuilder, Value, CubeQuery, AggFn};
//!
//! let mut wh = Warehouse::new(last_minute_sales());
//! let mut row = FactRowBuilder::new();
//! row.measure("price", Value::Float(199.0))
//!    .measure("miles", Value::Float(300.0))
//!    .measure("traveler_rate", Value::Float(0.8))
//!    .role_member("Origin", &[("airport_name", Value::text("JFK"))])
//!    .role_member("Destination", &[("airport_name", Value::text("El Prat"))])
//!    .role_member("Customer", &[("customer_name", Value::text("Ann"))])
//!    .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
//! let report = wh.load("Last Minute Sales", vec![row.build()]).unwrap();
//! assert_eq!(report.inserted, 1);
//!
//! let rs = CubeQuery::on("Last Minute Sales")
//!     .group_by("Destination", "Airport")
//!     .aggregate("price", AggFn::Sum)
//!     .run(&wh)
//!     .unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod column;
mod dimension;
mod error;
mod etl;
mod fact;
mod plan;
mod query;
mod snapshot;
pub mod testing;
mod value;
mod warehouse;

pub use column::Column;
pub use dimension::{DimensionTable, MemberKey};
pub use error::{Result, WarehouseError};
pub use etl::{EtlReport, FactRow, FactRowBuilder, Rejection};
pub use fact::FactTable;
pub use plan::{CompiledRollup, MaterializedRollup, DEFAULT_MATERIALIZED_GROUP_LIMIT};
pub use query::{AggFn, Aggregate, CubeQuery, Filter, FilterTarget, Predicate, ResultSet};
pub use snapshot::{DimensionSnapshot, FactSnapshot, WarehouseSnapshot};
pub use value::Value;
pub use warehouse::{DeltaTracker, Warehouse, WarehouseDelta};
