//! Compiled roll-up plans: the columnar fast path of
//! [`CubeQuery`](crate::query::CubeQuery).
//!
//! The reference executor re-resolves role and level names, clones a
//! `Vec<Value>` group key and hashes it *per fact row*. A
//! [`CompiledRollup`] does all of that once per (query, warehouse
//! revision):
//!
//! * every filter becomes a per-member **pass mask** — the predicate is
//!   evaluated once per dimension member, never per fact row;
//! * every group-by coordinate becomes a surrogate-key →
//!   **group-ordinal** mapping array materialised from the dimension's
//!   level column, plus the ordinal → value table used at
//!   materialisation;
//! * the composed group ordinal (per-coordinate ordinals folded through
//!   strides) indexes a flat `Vec<Accumulator>` — no per-row hashing and
//!   no `Value` clones until the result is materialised.
//!
//! The scan itself then touches only `u32` key slices, `bool` masks and
//! numeric measure slices. When the composed ordinal space is too large
//! to materialise densely the scan degrades to hashing the (cheap,
//! integer) composed ordinal; when it cannot even be composed without
//! overflow the plan asks the caller to fall back to the reference
//! executor. Results are byte-identical to
//! [`CubeQuery::execute_reference`](crate::query::CubeQuery::execute_reference)
//! in every mode (a proptest in `tests/compiled_parity.rs` holds this).

#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::column::{Column, NumericSlice};
use crate::dimension::DimensionTable;
use crate::error::{Result, WarehouseError};
use crate::query::{Accumulator, AggFn, CubeQuery, Filter, FilterTarget, ResultSet};
use crate::value::Value;
use crate::warehouse::{Warehouse, WarehouseDelta};
use dwqa_obs::names as obs;
use std::collections::HashMap;

/// Largest composed-ordinal space the scan materialises as a flat
/// accumulator table; beyond it, grouping hashes the composed ordinal
/// instead (still no `Value` work per row).
const DENSE_GROUP_LIMIT: u128 = 1 << 20;

/// One filter, compiled to a per-member verdict.
#[derive(Debug)]
struct CompiledFilter {
    role_idx: usize,
    /// `pass[member_key]` — whether the member satisfies every filter
    /// on this role (filters sharing a role are AND-merged).
    pass: Vec<bool>,
}

/// One group-by coordinate, compiled to an ordinal mapping.
#[derive(Debug)]
struct CompiledGroup {
    role_idx: usize,
    /// Surrogate key → ordinal of the member's level value. Distinct
    /// members sharing a level value (the roll-up) share an ordinal.
    ordinal_of_member: Vec<u32>,
    /// Ordinal → level value, for materialisation only.
    values: Vec<Value>,
}

/// A [`CubeQuery`] resolved and validated against one warehouse
/// revision. Obtain one via [`CubeQuery::compile`] or (cached) through
/// [`Warehouse::plan`]; execute it with [`CompiledRollup::execute`].
#[derive(Debug)]
pub struct CompiledRollup {
    revision: u64,
    fact: String,
    agg_cols: Vec<usize>,
    agg_fns: Vec<AggFn>,
    filters: Vec<CompiledFilter>,
    groups: Vec<CompiledGroup>,
    /// Stride of each coordinate in the composed ordinal (little-endian:
    /// `strides[0] == 1`).
    strides: Vec<u128>,
    /// Product of coordinate cardinalities — the composed ordinal space.
    total_groups: u128,
    /// Composing ordinals overflowed `u128`; callers must use the
    /// reference executor (results stay correct, just slower).
    overflowed: bool,
    columns: Vec<String>,
    order: Option<(usize, bool)>,
    limit: Option<usize>,
}

impl CompiledRollup {
    /// The warehouse revision this plan was compiled against; the plan
    /// cache drops the plan when the warehouse moves past it.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether the composed ordinal space overflowed and execution must
    /// fall back to the reference scan.
    pub(crate) fn needs_reference(&self) -> bool {
        self.overflowed
    }

    /// Resolves and validates `query` against `wh`. Performs exactly the
    /// checks of the reference executor, in the same order, so a failing
    /// query reports the identical error from either path.
    pub(crate) fn compile(query: &CubeQuery, wh: &Warehouse) -> Result<CompiledRollup> {
        let fact = wh.fact(&query.fact)?;

        // Aggregates: measure resolution + additivity legality.
        let mut agg_cols = Vec::with_capacity(query.aggregates.len());
        let mut agg_fns = Vec::with_capacity(query.aggregates.len());
        for a in &query.aggregates {
            let idx = fact.measure_index(&a.measure)?;
            let measure = &fact.model().measures[idx];
            match a.func {
                AggFn::Sum if !measure.additivity.allows_sum() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be summed", measure.additivity),
                    });
                }
                AggFn::Avg if !measure.additivity.allows_avg() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be averaged", measure.additivity),
                    });
                }
                _ => {}
            }
            agg_cols.push(idx);
            agg_fns.push(a.func);
        }

        // Filters: resolve the tested column once, evaluate the
        // predicate once per *member*, AND-merge masks sharing a role.
        let mut filters: Vec<CompiledFilter> = Vec::new();
        for f in &query.filters {
            let role_idx = fact.role_index(&f.role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            let column = match &f.target {
                FilterTarget::Level(level) => {
                    let (level_id, _) =
                        dim.model()
                            .level(level)
                            .ok_or_else(|| WarehouseError::UnknownLevel {
                                dimension: dim.model().name.clone(),
                                level: level.clone(),
                            })?;
                    dim.descriptor_column(level_id.index())
                }
                FilterTarget::Attribute(attr) => {
                    dim.attribute_column(attr)
                        .ok_or_else(|| WarehouseError::UnknownAttribute {
                            level: dim.model().name.clone(),
                            attribute: attr.clone(),
                        })?
                }
            };
            let pass: Vec<bool> = (0..dim.len())
                .map(|m| f.predicate.matches(&column.get(m)))
                .collect();
            match filters.iter_mut().find(|c| c.role_idx == role_idx) {
                Some(existing) => {
                    for (e, p) in existing.pass.iter_mut().zip(&pass) {
                        *e = *e && *p;
                    }
                }
                None => filters.push(CompiledFilter { role_idx, pass }),
            }
        }

        // Group-by coordinates: the surrogate-key → ordinal arrays.
        let mut groups = Vec::with_capacity(query.group_by.len());
        for (role, level) in &query.group_by {
            let role_idx = fact.role_index(role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            let (level_id, _) =
                dim.model()
                    .level(level)
                    .ok_or_else(|| WarehouseError::UnknownLevel {
                        dimension: dim.model().name.clone(),
                        level: level.clone(),
                    })?;
            let column = dim.descriptor_column(level_id.index());
            let mut ordinal_of_member = Vec::with_capacity(dim.len());
            let mut values: Vec<Value> = Vec::new();
            let mut seen: HashMap<Value, u32> = HashMap::new();
            for m in 0..dim.len() {
                let v = column.get(m);
                let ordinal = match seen.get(&v) {
                    Some(&o) => o,
                    None => {
                        // A dimension holds at most u32::MAX members, so
                        // distinct level values fit in u32 too.
                        let o = values.len() as u32;
                        seen.insert(v.clone(), o);
                        values.push(v);
                        o
                    }
                };
                ordinal_of_member.push(ordinal);
            }
            groups.push(CompiledGroup {
                role_idx,
                ordinal_of_member,
                values,
            });
        }

        // Strides compose per-coordinate ordinals into one flat ordinal.
        let mut strides = Vec::with_capacity(groups.len());
        let mut total: u128 = 1;
        let mut overflowed = false;
        for g in &groups {
            strides.push(total);
            match total.checked_mul(g.values.len() as u128) {
                Some(t) => total = t,
                None => {
                    overflowed = true;
                    break;
                }
            }
        }

        // Output shape and the (post-scan, in the reference) order-by
        // resolution — nothing between group validation and this check
        // can fail, so validating here reports identical errors.
        let mut columns: Vec<String> = query
            .group_by
            .iter()
            .map(|(role, level)| format!("{role}.{level}"))
            .collect();
        for a in &query.aggregates {
            columns.push(format!("{}({})", a.func.label(), a.measure));
        }
        let order = match &query.order {
            Some((column, desc)) => {
                let idx = columns.iter().position(|c| c == column).ok_or_else(|| {
                    WarehouseError::UnknownMeasure {
                        fact: query.fact.clone(),
                        measure: column.clone(),
                    }
                })?;
                Some((idx, *desc))
            }
            None => None,
        };

        Ok(CompiledRollup {
            revision: wh.revision(),
            fact: query.fact.clone(),
            agg_cols,
            agg_fns,
            filters,
            groups,
            strides,
            total_groups: total,
            overflowed,
            columns,
            order,
            limit: query.limit,
        })
    }

    /// Runs the tight scan against `wh`. The warehouse must be at the
    /// revision the plan was compiled for (callers going through
    /// [`Warehouse::plan`] get that guarantee from the plan cache).
    pub fn execute(&self, wh: &Warehouse) -> Result<ResultSet> {
        let fact = wh.fact(&self.fact)?;
        let n_rows = fact.len();
        let n_aggs = self.agg_cols.len();
        dwqa_obs::counter_add(obs::WAREHOUSE_ROWS_SCANNED, n_rows as u64);

        let filters: Vec<(&[u32], &[bool])> = self
            .filters
            .iter()
            .map(|f| (fact.role_key_column(f.role_idx), f.pass.as_slice()))
            .collect();
        let measures: Vec<NumericSlice<'_>> = self
            .agg_cols
            .iter()
            .map(|&mi| fact.measure_column(mi).numeric())
            .collect();

        // Zero-group fast path: one accumulator row, no key work at all.
        if self.groups.is_empty() {
            let mut accs = vec![Accumulator::default(); n_aggs];
            let mut any = false;
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                any = true;
                for (acc, m) in accs.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            let rows = if any {
                vec![accs
                    .iter()
                    .zip(&self.agg_fns)
                    .map(|(acc, &f)| acc.finish(f))
                    .collect()]
            } else {
                Vec::new()
            };
            return self.finish(rows);
        }

        let group_keys: Vec<(&[u32], &[u32])> = self
            .groups
            .iter()
            .map(|g| {
                (
                    fact.role_key_column(g.role_idx),
                    g.ordinal_of_member.as_slice(),
                )
            })
            .collect();

        let rows = if !self.overflowed && self.total_groups <= DENSE_GROUP_LIMIT {
            // Dense: flat accumulator table indexed by composed ordinal.
            let total = self.total_groups as usize;
            let strides: Vec<usize> = self.strides.iter().map(|&s| s as usize).collect();
            let mut accs = vec![Accumulator::default(); total * n_aggs];
            let mut touched = vec![false; total];
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                let mut flat = 0usize;
                for ((keys, ordinals), &stride) in group_keys.iter().zip(&strides) {
                    flat += ordinals[keys[row] as usize] as usize * stride;
                }
                touched[flat] = true;
                let slot = &mut accs[flat * n_aggs..(flat + 1) * n_aggs];
                for (acc, m) in slot.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            let mut rows = Vec::new();
            for (flat, hit) in touched.iter().enumerate() {
                if *hit {
                    rows.push(
                        self.materialize(flat as u128, &accs[flat * n_aggs..(flat + 1) * n_aggs]),
                    );
                }
            }
            rows
        } else {
            // Sparse: the ordinal space is too large to materialise, but
            // hashing the composed *integer* ordinal still avoids every
            // per-row `Value` clone of the reference scan.
            let mut table: HashMap<u128, Vec<Accumulator>> = HashMap::new();
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                let mut flat = 0u128;
                for ((keys, ordinals), &stride) in group_keys.iter().zip(&self.strides) {
                    flat += ordinals[keys[row] as usize] as u128 * stride;
                }
                let accs = table
                    .entry(flat)
                    .or_insert_with(|| vec![Accumulator::default(); n_aggs]);
                for (acc, m) in accs.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            table
                .iter()
                .map(|(&flat, accs)| self.materialize(flat, accs))
                .collect()
        };
        self.finish(rows)
    }

    /// Rebuilds one output row from a composed ordinal + its
    /// accumulators — the only place `Value`s are cloned.
    fn materialize(&self, flat: u128, accs: &[Accumulator]) -> Vec<Value> {
        let mut row = Vec::with_capacity(self.groups.len() + accs.len());
        for (g, &stride) in self.groups.iter().zip(&self.strides) {
            let ordinal = (flat / stride) % g.values.len() as u128;
            row.push(g.values[ordinal as usize].clone());
        }
        for (acc, &f) in accs.iter().zip(&self.agg_fns) {
            row.push(acc.finish(f));
        }
        row
    }

    /// The shared materialisation tail: deterministic base sort, the
    /// optional stable order-by, the limit — exactly the reference path.
    fn finish(&self, rows: Vec<Vec<Value>>) -> Result<ResultSet> {
        Ok(finalize(&self.columns, self.order, self.limit, rows))
    }
}

/// The materialisation tail shared by the compiled executor and the
/// incremental [`MaterializedRollup`]: deterministic base sort, the
/// optional stable order-by, the limit — exactly the reference path.
fn finalize(
    columns: &[String],
    order: Option<(usize, bool)>,
    limit: Option<usize>,
    mut rows: Vec<Vec<Value>>,
) -> ResultSet {
    dwqa_obs::counter_add(obs::WAREHOUSE_GROUPS, rows.len() as u64);
    rows.sort();
    if let Some((idx, desc)) = order {
        rows.sort_by(|a, b| {
            let ord = a[idx].cmp(&b[idx]);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
    ResultSet {
        columns: columns.to_vec(),
        rows,
    }
}

/// Maximum group-by coordinates a materialized roll-up can carry: each
/// coordinate's ordinal occupies one 32-bit lane of the `u128` group key.
///
/// Lanes — not the compiled plan's strides — because strides are composed
/// from the coordinates' *current* cardinalities: one new distinct level
/// value would renumber every composed ordinal and invalidate the whole
/// accumulator table. A fixed 32-bit lane per coordinate is stable under
/// cardinality growth, which is exactly what incremental maintenance
/// needs to absorb new dimension members.
const MAX_LANES: usize = 4;

/// Default bound on live groups per materialized entry; past it the
/// entry demotes to recompute-on-next-read (the incremental analogue of
/// the compiled executor's dense→sparse migration).
pub const DEFAULT_MATERIALIZED_GROUP_LIMIT: usize = 1 << 20;

/// One filter role with its live pass mask plus the original query
/// filters needed to extend the mask over new members.
#[derive(Debug, Clone)]
struct MatFilter {
    role_idx: usize,
    dim_idx: usize,
    /// The query's filters on this role (one or more; AND-merged), kept
    /// so a new member's verdict can be computed exactly as compilation
    /// would have.
    specs: Vec<Filter>,
    /// `pass[member_key]`, extended as the dimension gains members.
    pass: Vec<bool>,
}

/// One group-by coordinate with its live ordinal mapping.
#[derive(Debug, Clone)]
struct MatGroup {
    role_idx: usize,
    dim_idx: usize,
    /// Level name, re-resolved against the dimension model when new
    /// members arrive.
    level: String,
    /// Surrogate key → ordinal, extended as the dimension gains members.
    ordinal_of_member: Vec<u32>,
    /// Ordinal → level value, for materialisation.
    values: Vec<Value>,
    /// Level value → ordinal — the compiled plan's first-seen assignment,
    /// retained so extension reuses existing ordinals for known values.
    seen: HashMap<Value, u32>,
}

/// A roll-up result kept **live**: the per-group accumulator state of a
/// [`CubeQuery`] plus everything needed to fold a pure-append
/// [`WarehouseDelta`] into it — new dimension members extend the pass
/// masks and key→ordinal maps, appended fact rows route through the
/// tight scan over just the delta. The maintained [`ResultSet`] is
/// byte-identical to a cold
/// [`execute_reference`](CubeQuery::execute_reference) recompute
/// (proptest-enforced in `tests/incremental_parity.rs`): rows are folded
/// in ascending row order across commits, reproducing the exact
/// accumulation order of a full scan.
///
/// Incremental maintenance is an optimization, never a correctness
/// risk: [`MaterializedRollup::build`] declines queries the scheme
/// cannot carry (reference-executor fallback, more than [`MAX_LANES`]
/// coordinates), and [`MaterializedRollup::apply_delta`] returns `false`
/// — demote me — whenever a delta doesn't line up with the folded state
/// or the group table outgrows its limit.
#[derive(Debug, Clone)]
pub struct MaterializedRollup {
    query: CubeQuery,
    fact_idx: usize,
    /// Fact rows folded so far; the next delta must start exactly here.
    rows_folded: usize,
    agg_cols: Vec<usize>,
    agg_fns: Vec<AggFn>,
    filters: Vec<MatFilter>,
    groups: Vec<MatGroup>,
    /// Lane-packed group key → accumulators, one per requested aggregate.
    accs: HashMap<u128, Vec<Accumulator>>,
    group_limit: usize,
    columns: Vec<String>,
    order: Option<(usize, bool)>,
    limit: Option<usize>,
    result: ResultSet,
}

/// Resolves the column a filter tests, against the *current* dimension
/// table (columns cannot be stored across mutations).
fn filter_column<'a>(dim: &'a DimensionTable, target: &FilterTarget) -> Option<&'a Column> {
    match target {
        FilterTarget::Level(level) => {
            let (level_id, _) = dim.model().level(level)?;
            Some(dim.descriptor_column(level_id.index()))
        }
        FilterTarget::Attribute(attr) => dim.attribute_column(attr),
    }
}

impl MaterializedRollup {
    /// Builds live accumulator state for `query` over the warehouse's
    /// current contents.
    ///
    /// Returns `Ok(None)` when the query cannot be maintained
    /// incrementally — it needs the reference executor, groups on more
    /// than [`MAX_LANES`] coordinates, or materialises more than
    /// `group_limit` groups — in which case callers run it per-read as
    /// before. Invalid queries report the identical error a
    /// [`CubeQuery::run`] would, so caching never changes error
    /// behaviour.
    pub fn build(
        query: &CubeQuery,
        wh: &Warehouse,
        group_limit: usize,
    ) -> Result<Option<MaterializedRollup>> {
        // Compile first: validation happens in exactly the reference
        // order, so error parity is inherited rather than re-implemented.
        let plan = CompiledRollup::compile(query, wh)?;
        if plan.needs_reference() || plan.groups.len() > MAX_LANES {
            return Ok(None);
        }
        let fact = wh.fact(&query.fact)?;
        let Some((fact_id, fact_model)) = wh.schema().fact(&query.fact) else {
            return Ok(None); // unreachable: compile resolved the fact
        };
        let filters = plan
            .filters
            .iter()
            .map(|f| MatFilter {
                role_idx: f.role_idx,
                dim_idx: fact_model.roles[f.role_idx].dimension.index(),
                specs: query
                    .filters
                    .iter()
                    .filter(|qf| fact.role_index(&qf.role).ok() == Some(f.role_idx))
                    .cloned()
                    .collect(),
                pass: f.pass.clone(),
            })
            .collect();
        let groups = plan
            .groups
            .iter()
            .zip(&query.group_by)
            .map(|(g, (_, level))| {
                let mut seen = HashMap::with_capacity(g.values.len());
                for (o, v) in g.values.iter().enumerate() {
                    seen.insert(v.clone(), o as u32);
                }
                MatGroup {
                    role_idx: g.role_idx,
                    dim_idx: fact_model.roles[g.role_idx].dimension.index(),
                    level: level.clone(),
                    ordinal_of_member: g.ordinal_of_member.clone(),
                    values: g.values.clone(),
                    seen,
                }
            })
            .collect();
        let mut mat = MaterializedRollup {
            query: query.clone(),
            fact_idx: fact_id.index(),
            rows_folded: 0,
            agg_cols: plan.agg_cols.clone(),
            agg_fns: plan.agg_fns.clone(),
            filters,
            groups,
            accs: HashMap::new(),
            group_limit,
            columns: plan.columns.clone(),
            order: plan.order,
            limit: plan.limit,
            result: ResultSet {
                columns: plan.columns.clone(),
                rows: Vec::new(),
            },
        };
        mat.fold_rows(wh, 0, fact.len())?;
        if mat.accs.len() > group_limit {
            return Ok(None);
        }
        mat.result = mat.materialize_all();
        Ok(Some(mat))
    }

    /// The maintained result — identical to what running the query
    /// against the warehouse at the folded extent would return.
    pub fn result_set(&self) -> &ResultSet {
        &self.result
    }

    /// The query this roll-up materialises.
    pub fn query(&self) -> &CubeQuery {
        &self.query
    }

    /// Fact rows folded into the accumulators so far.
    pub fn rows_folded(&self) -> usize {
        self.rows_folded
    }

    /// Folds a pure-append delta into the live state and refreshes the
    /// maintained result.
    ///
    /// Returns `false` — the caller must demote this entry to
    /// recompute-on-next-read — when the delta cannot be absorbed: its
    /// before-extents don't match the folded state, the warehouse isn't
    /// at the delta's after-extents, a filter/level no longer resolves,
    /// or the group table outgrows the limit. On `false` the entry's
    /// state may be partially extended and must be discarded, never
    /// read.
    pub fn apply_delta(&mut self, wh: &Warehouse, delta: &WarehouseDelta) -> bool {
        let Some(&(fact_before, fact_after)) = delta.fact_rows.get(self.fact_idx) else {
            return false;
        };
        if fact_before != self.rows_folded {
            return false;
        }
        let Ok(fact) = wh.fact(&self.query.fact) else {
            return false;
        };
        if fact.len() != fact_after {
            return false;
        }
        // Extend filter pass masks over new members: each new member's
        // verdict is the AND of every query filter on that role,
        // evaluated exactly as compilation would have.
        for f in &mut self.filters {
            let Some(&(before, after)) = delta.dim_members.get(f.dim_idx) else {
                return false;
            };
            if f.pass.len() != before {
                return false;
            }
            let dim = wh.dimension_table_for_role(fact, f.role_idx);
            if dim.len() != after {
                return false;
            }
            for m in before..after {
                let mut verdict = true;
                for spec in &f.specs {
                    let Some(column) = filter_column(dim, &spec.target) else {
                        return false;
                    };
                    verdict = verdict && spec.predicate.matches(&column.get(m));
                }
                f.pass.push(verdict);
            }
        }
        // Extend key→ordinal maps: known level values reuse their
        // ordinal (the roll-up), new distinct values take fresh lanes-
        // local ordinals. Assignment order differs from a cold recompile
        // but cannot be observed: materialisation sorts rows by value.
        for g in &mut self.groups {
            let Some(&(before, after)) = delta.dim_members.get(g.dim_idx) else {
                return false;
            };
            if g.ordinal_of_member.len() != before {
                return false;
            }
            let dim = wh.dimension_table_for_role(fact, g.role_idx);
            if dim.len() != after {
                return false;
            }
            let Some((level_id, _)) = dim.model().level(&g.level) else {
                return false;
            };
            let column = dim.descriptor_column(level_id.index());
            for m in before..after {
                let v = column.get(m);
                let ordinal = match g.seen.get(&v) {
                    Some(&o) => o,
                    None => {
                        let o = g.values.len() as u32;
                        g.seen.insert(v.clone(), o);
                        g.values.push(v);
                        o
                    }
                };
                g.ordinal_of_member.push(ordinal);
            }
        }
        if self.fold_rows(wh, fact_before, fact_after).is_err() {
            return false;
        }
        if self.accs.len() > self.group_limit {
            return false;
        }
        self.result = self.materialize_all();
        true
    }

    /// The tight scan over rows `from..to`, accumulating into the lane-
    /// packed group table. Folding strictly ascending row ranges across
    /// commits reproduces the accumulation order — and therefore the
    /// float results, bit for bit — of one cold scan over `0..to`.
    fn fold_rows(&mut self, wh: &Warehouse, from: usize, to: usize) -> Result<()> {
        let fact = wh.fact(&self.query.fact)?;
        let n_aggs = self.agg_cols.len();
        dwqa_obs::counter_add(obs::WAREHOUSE_ROWS_SCANNED, (to - from) as u64);
        let filters: Vec<(&[u32], &[bool])> = self
            .filters
            .iter()
            .map(|f| (fact.role_key_column(f.role_idx), f.pass.as_slice()))
            .collect();
        let group_keys: Vec<(&[u32], &[u32])> = self
            .groups
            .iter()
            .map(|g| {
                (
                    fact.role_key_column(g.role_idx),
                    g.ordinal_of_member.as_slice(),
                )
            })
            .collect();
        let measures: Vec<NumericSlice<'_>> = self
            .agg_cols
            .iter()
            .map(|&mi| fact.measure_column(mi).numeric())
            .collect();
        'rows: for row in from..to {
            for (keys, pass) in &filters {
                if !pass[keys[row] as usize] {
                    continue 'rows;
                }
            }
            let mut packed = 0u128;
            for (lane, (keys, ordinals)) in group_keys.iter().enumerate() {
                packed |= (ordinals[keys[row] as usize] as u128) << (32 * lane);
            }
            let accs = self
                .accs
                .entry(packed)
                .or_insert_with(|| vec![Accumulator::default(); n_aggs]);
            for (acc, m) in accs.iter_mut().zip(&measures) {
                if let Some(v) = m.get(row) {
                    acc.push(v);
                }
            }
        }
        self.rows_folded = to;
        Ok(())
    }

    /// Rebuilds the full result from the live accumulators through the
    /// same materialisation tail as both executors.
    fn materialize_all(&self) -> ResultSet {
        let rows: Vec<Vec<Value>> = self
            .accs
            .iter()
            .map(|(&packed, accs)| {
                let mut row = Vec::with_capacity(self.groups.len() + accs.len());
                for (lane, g) in self.groups.iter().enumerate() {
                    let ordinal = ((packed >> (32 * lane)) & 0xFFFF_FFFF) as usize;
                    row.push(g.values[ordinal].clone());
                }
                for (acc, &f) in accs.iter().zip(&self.agg_fns) {
                    row.push(acc.finish(f));
                }
                row
            })
            .collect();
        finalize(&self.columns, self.order, self.limit, rows)
    }
}
