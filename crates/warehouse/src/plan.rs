//! Compiled roll-up plans: the columnar fast path of
//! [`CubeQuery`](crate::query::CubeQuery).
//!
//! The reference executor re-resolves role and level names, clones a
//! `Vec<Value>` group key and hashes it *per fact row*. A
//! [`CompiledRollup`] does all of that once per (query, warehouse
//! revision):
//!
//! * every filter becomes a per-member **pass mask** — the predicate is
//!   evaluated once per dimension member, never per fact row;
//! * every group-by coordinate becomes a surrogate-key →
//!   **group-ordinal** mapping array materialised from the dimension's
//!   level column, plus the ordinal → value table used at
//!   materialisation;
//! * the composed group ordinal (per-coordinate ordinals folded through
//!   strides) indexes a flat `Vec<Accumulator>` — no per-row hashing and
//!   no `Value` clones until the result is materialised.
//!
//! The scan itself then touches only `u32` key slices, `bool` masks and
//! numeric measure slices. When the composed ordinal space is too large
//! to materialise densely the scan degrades to hashing the (cheap,
//! integer) composed ordinal; when it cannot even be composed without
//! overflow the plan asks the caller to fall back to the reference
//! executor. Results are byte-identical to
//! [`CubeQuery::execute_reference`](crate::query::CubeQuery::execute_reference)
//! in every mode (a proptest in `tests/compiled_parity.rs` holds this).

#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::column::NumericSlice;
use crate::error::{Result, WarehouseError};
use crate::query::{Accumulator, AggFn, CubeQuery, FilterTarget, ResultSet};
use crate::value::Value;
use crate::warehouse::Warehouse;
use dwqa_obs::names as obs;
use std::collections::HashMap;

/// Largest composed-ordinal space the scan materialises as a flat
/// accumulator table; beyond it, grouping hashes the composed ordinal
/// instead (still no `Value` work per row).
const DENSE_GROUP_LIMIT: u128 = 1 << 20;

/// One filter, compiled to a per-member verdict.
#[derive(Debug)]
struct CompiledFilter {
    role_idx: usize,
    /// `pass[member_key]` — whether the member satisfies every filter
    /// on this role (filters sharing a role are AND-merged).
    pass: Vec<bool>,
}

/// One group-by coordinate, compiled to an ordinal mapping.
#[derive(Debug)]
struct CompiledGroup {
    role_idx: usize,
    /// Surrogate key → ordinal of the member's level value. Distinct
    /// members sharing a level value (the roll-up) share an ordinal.
    ordinal_of_member: Vec<u32>,
    /// Ordinal → level value, for materialisation only.
    values: Vec<Value>,
}

/// A [`CubeQuery`] resolved and validated against one warehouse
/// revision. Obtain one via [`CubeQuery::compile`] or (cached) through
/// [`Warehouse::plan`]; execute it with [`CompiledRollup::execute`].
#[derive(Debug)]
pub struct CompiledRollup {
    revision: u64,
    fact: String,
    agg_cols: Vec<usize>,
    agg_fns: Vec<AggFn>,
    filters: Vec<CompiledFilter>,
    groups: Vec<CompiledGroup>,
    /// Stride of each coordinate in the composed ordinal (little-endian:
    /// `strides[0] == 1`).
    strides: Vec<u128>,
    /// Product of coordinate cardinalities — the composed ordinal space.
    total_groups: u128,
    /// Composing ordinals overflowed `u128`; callers must use the
    /// reference executor (results stay correct, just slower).
    overflowed: bool,
    columns: Vec<String>,
    order: Option<(usize, bool)>,
    limit: Option<usize>,
}

impl CompiledRollup {
    /// The warehouse revision this plan was compiled against; the plan
    /// cache drops the plan when the warehouse moves past it.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether the composed ordinal space overflowed and execution must
    /// fall back to the reference scan.
    pub(crate) fn needs_reference(&self) -> bool {
        self.overflowed
    }

    /// Resolves and validates `query` against `wh`. Performs exactly the
    /// checks of the reference executor, in the same order, so a failing
    /// query reports the identical error from either path.
    pub(crate) fn compile(query: &CubeQuery, wh: &Warehouse) -> Result<CompiledRollup> {
        let fact = wh.fact(&query.fact)?;

        // Aggregates: measure resolution + additivity legality.
        let mut agg_cols = Vec::with_capacity(query.aggregates.len());
        let mut agg_fns = Vec::with_capacity(query.aggregates.len());
        for a in &query.aggregates {
            let idx = fact.measure_index(&a.measure)?;
            let measure = &fact.model().measures[idx];
            match a.func {
                AggFn::Sum if !measure.additivity.allows_sum() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be summed", measure.additivity),
                    });
                }
                AggFn::Avg if !measure.additivity.allows_avg() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be averaged", measure.additivity),
                    });
                }
                _ => {}
            }
            agg_cols.push(idx);
            agg_fns.push(a.func);
        }

        // Filters: resolve the tested column once, evaluate the
        // predicate once per *member*, AND-merge masks sharing a role.
        let mut filters: Vec<CompiledFilter> = Vec::new();
        for f in &query.filters {
            let role_idx = fact.role_index(&f.role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            let column = match &f.target {
                FilterTarget::Level(level) => {
                    let (level_id, _) =
                        dim.model()
                            .level(level)
                            .ok_or_else(|| WarehouseError::UnknownLevel {
                                dimension: dim.model().name.clone(),
                                level: level.clone(),
                            })?;
                    dim.descriptor_column(level_id.index())
                }
                FilterTarget::Attribute(attr) => {
                    dim.attribute_column(attr)
                        .ok_or_else(|| WarehouseError::UnknownAttribute {
                            level: dim.model().name.clone(),
                            attribute: attr.clone(),
                        })?
                }
            };
            let pass: Vec<bool> = (0..dim.len())
                .map(|m| f.predicate.matches(&column.get(m)))
                .collect();
            match filters.iter_mut().find(|c| c.role_idx == role_idx) {
                Some(existing) => {
                    for (e, p) in existing.pass.iter_mut().zip(&pass) {
                        *e = *e && *p;
                    }
                }
                None => filters.push(CompiledFilter { role_idx, pass }),
            }
        }

        // Group-by coordinates: the surrogate-key → ordinal arrays.
        let mut groups = Vec::with_capacity(query.group_by.len());
        for (role, level) in &query.group_by {
            let role_idx = fact.role_index(role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            let (level_id, _) =
                dim.model()
                    .level(level)
                    .ok_or_else(|| WarehouseError::UnknownLevel {
                        dimension: dim.model().name.clone(),
                        level: level.clone(),
                    })?;
            let column = dim.descriptor_column(level_id.index());
            let mut ordinal_of_member = Vec::with_capacity(dim.len());
            let mut values: Vec<Value> = Vec::new();
            let mut seen: HashMap<Value, u32> = HashMap::new();
            for m in 0..dim.len() {
                let v = column.get(m);
                let ordinal = match seen.get(&v) {
                    Some(&o) => o,
                    None => {
                        // A dimension holds at most u32::MAX members, so
                        // distinct level values fit in u32 too.
                        let o = values.len() as u32;
                        seen.insert(v.clone(), o);
                        values.push(v);
                        o
                    }
                };
                ordinal_of_member.push(ordinal);
            }
            groups.push(CompiledGroup {
                role_idx,
                ordinal_of_member,
                values,
            });
        }

        // Strides compose per-coordinate ordinals into one flat ordinal.
        let mut strides = Vec::with_capacity(groups.len());
        let mut total: u128 = 1;
        let mut overflowed = false;
        for g in &groups {
            strides.push(total);
            match total.checked_mul(g.values.len() as u128) {
                Some(t) => total = t,
                None => {
                    overflowed = true;
                    break;
                }
            }
        }

        // Output shape and the (post-scan, in the reference) order-by
        // resolution — nothing between group validation and this check
        // can fail, so validating here reports identical errors.
        let mut columns: Vec<String> = query
            .group_by
            .iter()
            .map(|(role, level)| format!("{role}.{level}"))
            .collect();
        for a in &query.aggregates {
            columns.push(format!("{}({})", a.func.label(), a.measure));
        }
        let order = match &query.order {
            Some((column, desc)) => {
                let idx = columns.iter().position(|c| c == column).ok_or_else(|| {
                    WarehouseError::UnknownMeasure {
                        fact: query.fact.clone(),
                        measure: column.clone(),
                    }
                })?;
                Some((idx, *desc))
            }
            None => None,
        };

        Ok(CompiledRollup {
            revision: wh.revision(),
            fact: query.fact.clone(),
            agg_cols,
            agg_fns,
            filters,
            groups,
            strides,
            total_groups: total,
            overflowed,
            columns,
            order,
            limit: query.limit,
        })
    }

    /// Runs the tight scan against `wh`. The warehouse must be at the
    /// revision the plan was compiled for (callers going through
    /// [`Warehouse::plan`] get that guarantee from the plan cache).
    pub fn execute(&self, wh: &Warehouse) -> Result<ResultSet> {
        let fact = wh.fact(&self.fact)?;
        let n_rows = fact.len();
        let n_aggs = self.agg_cols.len();
        dwqa_obs::counter_add(obs::WAREHOUSE_ROWS_SCANNED, n_rows as u64);

        let filters: Vec<(&[u32], &[bool])> = self
            .filters
            .iter()
            .map(|f| (fact.role_key_column(f.role_idx), f.pass.as_slice()))
            .collect();
        let measures: Vec<NumericSlice<'_>> = self
            .agg_cols
            .iter()
            .map(|&mi| fact.measure_column(mi).numeric())
            .collect();

        // Zero-group fast path: one accumulator row, no key work at all.
        if self.groups.is_empty() {
            let mut accs = vec![Accumulator::default(); n_aggs];
            let mut any = false;
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                any = true;
                for (acc, m) in accs.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            let rows = if any {
                vec![accs
                    .iter()
                    .zip(&self.agg_fns)
                    .map(|(acc, &f)| acc.finish(f))
                    .collect()]
            } else {
                Vec::new()
            };
            return self.finish(rows);
        }

        let group_keys: Vec<(&[u32], &[u32])> = self
            .groups
            .iter()
            .map(|g| {
                (
                    fact.role_key_column(g.role_idx),
                    g.ordinal_of_member.as_slice(),
                )
            })
            .collect();

        let rows = if !self.overflowed && self.total_groups <= DENSE_GROUP_LIMIT {
            // Dense: flat accumulator table indexed by composed ordinal.
            let total = self.total_groups as usize;
            let strides: Vec<usize> = self.strides.iter().map(|&s| s as usize).collect();
            let mut accs = vec![Accumulator::default(); total * n_aggs];
            let mut touched = vec![false; total];
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                let mut flat = 0usize;
                for ((keys, ordinals), &stride) in group_keys.iter().zip(&strides) {
                    flat += ordinals[keys[row] as usize] as usize * stride;
                }
                touched[flat] = true;
                let slot = &mut accs[flat * n_aggs..(flat + 1) * n_aggs];
                for (acc, m) in slot.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            let mut rows = Vec::new();
            for (flat, hit) in touched.iter().enumerate() {
                if *hit {
                    rows.push(
                        self.materialize(flat as u128, &accs[flat * n_aggs..(flat + 1) * n_aggs]),
                    );
                }
            }
            rows
        } else {
            // Sparse: the ordinal space is too large to materialise, but
            // hashing the composed *integer* ordinal still avoids every
            // per-row `Value` clone of the reference scan.
            let mut table: HashMap<u128, Vec<Accumulator>> = HashMap::new();
            'rows: for row in 0..n_rows {
                for (keys, pass) in &filters {
                    if !pass[keys[row] as usize] {
                        continue 'rows;
                    }
                }
                let mut flat = 0u128;
                for ((keys, ordinals), &stride) in group_keys.iter().zip(&self.strides) {
                    flat += ordinals[keys[row] as usize] as u128 * stride;
                }
                let accs = table
                    .entry(flat)
                    .or_insert_with(|| vec![Accumulator::default(); n_aggs]);
                for (acc, m) in accs.iter_mut().zip(&measures) {
                    if let Some(v) = m.get(row) {
                        acc.push(v);
                    }
                }
            }
            table
                .iter()
                .map(|(&flat, accs)| self.materialize(flat, accs))
                .collect()
        };
        self.finish(rows)
    }

    /// Rebuilds one output row from a composed ordinal + its
    /// accumulators — the only place `Value`s are cloned.
    fn materialize(&self, flat: u128, accs: &[Accumulator]) -> Vec<Value> {
        let mut row = Vec::with_capacity(self.groups.len() + accs.len());
        for (g, &stride) in self.groups.iter().zip(&self.strides) {
            let ordinal = (flat / stride) % g.values.len() as u128;
            row.push(g.values[ordinal as usize].clone());
        }
        for (acc, &f) in accs.iter().zip(&self.agg_fns) {
            row.push(acc.finish(f));
        }
        row
    }

    /// The shared materialisation tail: deterministic base sort, the
    /// optional stable order-by, the limit — exactly the reference path.
    fn finish(&self, mut rows: Vec<Vec<Value>>) -> Result<ResultSet> {
        dwqa_obs::counter_add(obs::WAREHOUSE_GROUPS, rows.len() as u64);
        rows.sort();
        if let Some((idx, desc)) = self.order {
            rows.sort_by(|a, b| {
                let ord = a[idx].cmp(&b[idx]);
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok(ResultSet {
            columns: self.columns.clone(),
            rows,
        })
    }
}
