//! The cube query engine: slice/dice, roll-up/drill-down, aggregation.
//!
//! A [`CubeQuery`] names a fact, an optional set of [`Filter`]s (slice /
//! dice), a list of group-by coordinates (`(role, level)` pairs — choosing
//! a coarser level *is* roll-up, a finer one drill-down), and the
//! aggregates to compute. Execution is a single scan over the fact table
//! with hash aggregation, which is plenty for the corpus sizes of the
//! reproduction while keeping the semantics obvious.

use crate::error::{Result, WarehouseError};
use crate::value::Value;
use crate::warehouse::Warehouse;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFn {
    /// Sum (requires an additive measure).
    Sum,
    /// Arithmetic mean (requires an additive or semi-additive measure).
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of non-null measure values.
    Count,
}

impl AggFn {
    /// The label used in result column names, e.g. `sum`.
    pub fn label(self) -> &'static str {
        match self {
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Count => "count",
        }
    }
}

/// One requested aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// The measure to aggregate.
    pub measure: String,
    /// The function.
    pub func: AggFn,
}

/// A slice/dice predicate over level-descriptor values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Exactly equal.
    Eq(Value),
    /// Member of the set.
    In(Vec<Value>),
    /// Inclusive range (uses the total [`Value`] order; numbers compare
    /// numerically, dates chronologically).
    Between(Value, Value),
}

impl Predicate {
    /// Whether `v` satisfies the predicate.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Predicate::Eq(x) => v == x,
            Predicate::In(xs) => xs.contains(v),
            Predicate::Between(lo, hi) => v >= lo && v <= hi,
        }
    }
}

/// What a filter tests on the dimension member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterTarget {
    /// The descriptor of a hierarchy level ("City" → its `city_name`).
    Level(String),
    /// An arbitrary (possibly qualified) member attribute
    /// ("population", "City.population").
    Attribute(String),
}

/// A filter pinning a dimension role at some member property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// The fact's dimension role ("Destination").
    pub role: String,
    /// What is tested.
    pub target: FilterTarget,
    /// The predicate.
    pub predicate: Predicate,
}

/// A tabular query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Column names: group-by descriptors first, then `func(measure)`.
    pub columns: Vec<String>,
    /// Rows, sorted by the group-by key for determinism.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Numeric cell accessor.
    pub fn f64(&self, row: usize, column: &str) -> Option<f64> {
        self.rows.get(row)?.get(self.column(column)?)?.as_f64()
    }

    /// Inner-joins two result sets on pairs of key columns, producing the
    /// join keys followed by the remaining columns of both sides — the
    /// drill-across operation BI tools run over conformed dimensions
    /// (sales ⋈ weather on (city, date)).
    pub fn join(&self, other: &ResultSet, on: &[(&str, &str)]) -> Result<ResultSet> {
        let left_keys: Vec<usize> = on
            .iter()
            .map(|(l, _)| {
                self.column(l)
                    .ok_or_else(|| WarehouseError::UnknownMeasure {
                        fact: "join(left)".to_owned(),
                        measure: (*l).to_owned(),
                    })
            })
            .collect::<Result<_>>()?;
        let right_keys: Vec<usize> = on
            .iter()
            .map(|(_, r)| {
                other
                    .column(r)
                    .ok_or_else(|| WarehouseError::UnknownMeasure {
                        fact: "join(right)".to_owned(),
                        measure: (*r).to_owned(),
                    })
            })
            .collect::<Result<_>>()?;
        let left_rest: Vec<usize> = (0..self.columns.len())
            .filter(|i| !left_keys.contains(i))
            .collect();
        let right_rest: Vec<usize> = (0..other.columns.len())
            .filter(|i| !right_keys.contains(i))
            .collect();
        let mut columns: Vec<String> = left_keys.iter().map(|&i| self.columns[i].clone()).collect();
        columns.extend(left_rest.iter().map(|&i| self.columns[i].clone()));
        columns.extend(right_rest.iter().map(|&i| other.columns[i].clone()));
        // Hash the right side by key.
        let mut by_key: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for row in &other.rows {
            let key: Vec<Value> = right_keys.iter().map(|&i| row[i].clone()).collect();
            by_key.entry(key).or_default().push(row);
        }
        let mut rows = Vec::new();
        for row in &self.rows {
            let key: Vec<Value> = left_keys.iter().map(|&i| row[i].clone()).collect();
            if let Some(matches) = by_key.get(&key) {
                for m in matches {
                    let mut out: Vec<Value> = key.clone();
                    out.extend(left_rest.iter().map(|&i| row[i].clone()));
                    out.extend(right_rest.iter().map(|&i| m[i].clone()));
                    rows.push(out);
                }
            }
        }
        rows.sort();
        Ok(ResultSet { columns, rows })
    }

    /// Renders as RFC-4180-style CSV (quotes doubled, fields with commas,
    /// quotes or newlines quoted) — the classic BI export.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|v| field(&v.to_string()))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned text table (for the experiment binaries).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cols: &[String], widths: &[usize]| -> String {
            cols.iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &cells {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Default, Clone)]
pub(crate) struct Accumulator {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Accumulator {
    pub(crate) fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    pub(crate) fn finish(&self, f: AggFn) -> Value {
        match f {
            AggFn::Sum => Value::Float(self.sum),
            AggFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFn::Min => self.min.map_or(Value::Null, Value::Float),
            AggFn::Max => self.max.map_or(Value::Null, Value::Float),
            AggFn::Count => Value::Int(self.count as i64),
        }
    }
}

/// A declarative OLAP query over one fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubeQuery {
    pub(crate) fact: String,
    pub(crate) filters: Vec<Filter>,
    pub(crate) group_by: Vec<(String, String)>,
    pub(crate) aggregates: Vec<Aggregate>,
    pub(crate) order: Option<(String, bool)>,
    pub(crate) limit: Option<usize>,
}

impl CubeQuery {
    /// Starts a query on the named fact.
    pub fn on(fact: &str) -> CubeQuery {
        CubeQuery {
            fact: fact.to_owned(),
            filters: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            order: None,
            limit: None,
        }
    }

    /// Adds a slice/dice filter on a level descriptor.
    pub fn filter(mut self, role: &str, level: &str, predicate: Predicate) -> Self {
        self.filters.push(Filter {
            role: role.to_owned(),
            target: FilterTarget::Level(level.to_owned()),
            predicate,
        });
        self
    }

    /// Adds a filter on a member attribute (e.g. `population`). Qualified
    /// names (`City.population`) disambiguate when needed.
    pub fn filter_attribute(mut self, role: &str, attribute: &str, predicate: Predicate) -> Self {
        self.filters.push(Filter {
            role: role.to_owned(),
            target: FilterTarget::Attribute(attribute.to_owned()),
            predicate,
        });
        self
    }

    /// Orders the result by a column (group key or `func(measure)` name),
    /// descending when `desc`.
    pub fn order_by(mut self, column: &str, desc: bool) -> Self {
        self.order = Some((column.to_owned(), desc));
        self
    }

    /// Keeps only the first `n` rows after ordering.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Adds a group-by coordinate at `(role, level)` granularity.
    pub fn group_by(mut self, role: &str, level: &str) -> Self {
        self.group_by.push((role.to_owned(), level.to_owned()));
        self
    }

    /// Requests an aggregate.
    pub fn aggregate(mut self, measure: &str, func: AggFn) -> Self {
        self.aggregates.push(Aggregate {
            measure: measure.to_owned(),
            func,
        });
        self
    }

    /// Executes against a warehouse.
    ///
    /// This is the fast path: the query is compiled into a
    /// [`CompiledRollup`](crate::plan::CompiledRollup) (served from the
    /// warehouse's revision-keyed plan cache when possible) and run as a
    /// columnar scan. Results are byte-identical to
    /// [`CubeQuery::execute_reference`].
    pub fn run(&self, wh: &Warehouse) -> Result<ResultSet> {
        let plan = wh.plan(self)?;
        if plan.needs_reference() {
            return self.execute_reference(wh);
        }
        plan.execute(wh)
    }

    /// Compiles this query against `wh` without consulting the plan
    /// cache — useful for benchmarking compile cost and for callers that
    /// manage plan lifetime themselves.
    pub fn compile(&self, wh: &Warehouse) -> Result<crate::plan::CompiledRollup> {
        crate::plan::CompiledRollup::compile(self, wh)
    }

    /// The original row-at-a-time executor, kept as the semantic
    /// reference: it re-resolves member values and hashes a
    /// `Vec<Value>` group key per fact row. `run` must produce exactly
    /// the same rows, ordering and column names (proptest-enforced in
    /// `tests/compiled_parity.rs`).
    pub fn execute_reference(&self, wh: &Warehouse) -> Result<ResultSet> {
        let fact = wh.fact(&self.fact)?;

        // Resolve and validate everything up front.
        let mut agg_cols = Vec::with_capacity(self.aggregates.len());
        for a in &self.aggregates {
            let idx = fact.measure_index(&a.measure)?;
            let measure = &fact.model().measures[idx];
            match a.func {
                AggFn::Sum if !measure.additivity.allows_sum() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be summed", measure.additivity),
                    });
                }
                AggFn::Avg if !measure.additivity.allows_avg() => {
                    return Err(WarehouseError::IllegalAggregate {
                        measure: a.measure.clone(),
                        reason: format!("{} measures cannot be averaged", measure.additivity),
                    });
                }
                _ => {}
            }
            agg_cols.push(idx);
        }
        let mut filter_cols = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            let role_idx = fact.role_index(&f.role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            // Validate the target exists now, not per-row.
            match &f.target {
                FilterTarget::Level(level) => {
                    dim.model()
                        .level(level)
                        .ok_or_else(|| WarehouseError::UnknownLevel {
                            dimension: dim.model().name.clone(),
                            level: level.clone(),
                        })?;
                }
                FilterTarget::Attribute(attr) => {
                    if !dim
                        .column_names()
                        .any(|q| q == attr || q.split('.').nth(1) == Some(attr.as_str()))
                    {
                        return Err(WarehouseError::UnknownAttribute {
                            level: dim.model().name.clone(),
                            attribute: attr.clone(),
                        });
                    }
                }
            }
            filter_cols.push(role_idx);
        }
        let mut group_cols = Vec::with_capacity(self.group_by.len());
        for (role, level) in &self.group_by {
            let role_idx = fact.role_index(role)?;
            let dim = wh.dimension_table_for_role(fact, role_idx);
            dim.model()
                .level(level)
                .ok_or_else(|| WarehouseError::UnknownLevel {
                    dimension: dim.model().name.clone(),
                    level: level.clone(),
                })?;
            group_cols.push(role_idx);
        }

        // Scan.
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        'rows: for row in 0..fact.len() {
            for (f, &role_idx) in self.filters.iter().zip(&filter_cols) {
                let key = fact.role_key(row, role_idx);
                let dim = wh.dimension_table_for_role(fact, role_idx);
                let v = match &f.target {
                    FilterTarget::Level(level) => dim.level_value(key, level)?,
                    FilterTarget::Attribute(attr) => dim.attribute_value(key, attr)?,
                };
                if !f.predicate.matches(&v) {
                    continue 'rows;
                }
            }
            let mut group_key = Vec::with_capacity(group_cols.len());
            for ((_, level), &role_idx) in self.group_by.iter().zip(&group_cols) {
                let key = fact.role_key(row, role_idx);
                let dim = wh.dimension_table_for_role(fact, role_idx);
                group_key.push(dim.level_value(key, level)?);
            }
            let accs = groups
                .entry(group_key)
                .or_insert_with(|| vec![Accumulator::default(); self.aggregates.len()]);
            for (acc, &mi) in accs.iter_mut().zip(&agg_cols) {
                if let Some(v) = fact.measure_column(mi).get_f64(row) {
                    acc.push(v);
                }
            }
        }

        // Materialise, sorted by group key.
        let mut columns: Vec<String> = self
            .group_by
            .iter()
            .map(|(role, level)| format!("{role}.{level}"))
            .collect();
        for a in &self.aggregates {
            columns.push(format!("{}({})", a.func.label(), a.measure));
        }
        let mut rows: Vec<Vec<Value>> = groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(
                    accs.iter()
                        .zip(&self.aggregates)
                        .map(|(acc, a)| acc.finish(a.func)),
                );
                key
            })
            .collect();
        rows.sort();
        if let Some((column, desc)) = &self.order {
            let idx = columns.iter().position(|c| c == column).ok_or_else(|| {
                WarehouseError::UnknownMeasure {
                    fact: self.fact.clone(),
                    measure: column.clone(),
                }
            })?;
            // Stable sort on top of the deterministic base order.
            rows.sort_by(|a, b| {
                let ord = a[idx].cmp(&b[idx]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok(ResultSet { columns, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etl::FactRowBuilder;
    use dwqa_mdmodel::last_minute_sales;

    fn loaded_warehouse() -> Warehouse {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut rows = Vec::new();
        let data = [
            // (dest airport, city, day, price)
            ("El Prat", "Barcelona", 1, 100.0),
            ("El Prat", "Barcelona", 2, 140.0),
            ("JFK", "New York", 1, 300.0),
            ("La Guardia", "New York", 3, 260.0),
        ];
        for (airport, city, day, price) in data {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(price))
                .measure("miles", Value::Float(1000.0))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", Value::text(airport)),
                        ("city_name", Value::text(city)),
                    ],
                )
                .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
            rows.push(b.build());
        }
        wh.load("Last Minute Sales", rows).unwrap();
        wh
    }

    #[test]
    fn group_by_city_rolls_up_airports() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum)
            .aggregate("price", AggFn::Count)
            .run(&wh)
            .unwrap();
        assert_eq!(
            rs.columns,
            ["Destination.City", "sum(price)", "count(price)"]
        );
        assert_eq!(rs.rows.len(), 2);
        // Sorted: Barcelona before New York.
        assert_eq!(rs.rows[0][0], Value::text("Barcelona"));
        assert_eq!(rs.f64(0, "sum(price)"), Some(240.0));
        assert_eq!(rs.rows[1][0], Value::text("New York"));
        assert_eq!(rs.f64(1, "sum(price)"), Some(560.0));
    }

    #[test]
    fn drill_down_to_airport_level() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .filter(
                "Destination",
                "City",
                Predicate::Eq(Value::text("New York")),
            )
            .group_by("Destination", "Airport")
            .aggregate("price", AggFn::Sum)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::text("JFK"));
        assert_eq!(rs.rows[1][0], Value::text("La Guardia"));
    }

    #[test]
    fn slice_by_date_range() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .filter(
                "Date",
                "Date",
                Predicate::Between(
                    Value::date(2004, 1, 1).unwrap(),
                    Value::date(2004, 1, 2).unwrap(),
                ),
            )
            .aggregate("price", AggFn::Count)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .aggregate("price", AggFn::Avg)
            .aggregate("price", AggFn::Min)
            .aggregate("price", AggFn::Max)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.f64(0, "avg(price)"), Some(200.0));
        assert_eq!(rs.f64(0, "min(price)"), Some(100.0));
        assert_eq!(rs.f64(0, "max(price)"), Some(300.0));
    }

    #[test]
    fn sum_of_non_additive_measure_is_illegal() {
        let wh = loaded_warehouse();
        let err = CubeQuery::on("Last Minute Sales")
            .aggregate("traveler_rate", AggFn::Sum)
            .run(&wh)
            .unwrap_err();
        assert!(matches!(err, WarehouseError::IllegalAggregate { .. }));
        // AVG of non-additive is also illegal; MIN/MAX/COUNT are fine.
        assert!(CubeQuery::on("Last Minute Sales")
            .aggregate("traveler_rate", AggFn::Avg)
            .run(&wh)
            .is_err());
        assert!(CubeQuery::on("Last Minute Sales")
            .aggregate("traveler_rate", AggFn::Max)
            .run(&wh)
            .is_ok());
    }

    #[test]
    fn unknown_names_are_reported() {
        let wh = loaded_warehouse();
        assert!(matches!(
            CubeQuery::on("Ghost").run(&wh),
            Err(WarehouseError::UnknownFact(_))
        ));
        assert!(matches!(
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "Galaxy")
                .run(&wh),
            Err(WarehouseError::UnknownLevel { .. })
        ));
        assert!(matches!(
            CubeQuery::on("Last Minute Sales")
                .aggregate("profit", AggFn::Sum)
                .run(&wh),
            Err(WarehouseError::UnknownMeasure { .. })
        ));
        assert!(matches!(
            CubeQuery::on("Last Minute Sales")
                .filter("Layover", "City", Predicate::Eq(Value::text("x")))
                .run(&wh),
            Err(WarehouseError::UnknownRole { .. })
        ));
    }

    #[test]
    fn group_by_month_uses_derived_calendar() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .group_by("Date", "Month")
            .aggregate("price", AggFn::Sum)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::text("2004-01"));
        assert_eq!(rs.f64(0, "sum(price)"), Some(800.0));
    }

    #[test]
    fn attribute_filters_slice_members() {
        let mut wh = loaded_warehouse();
        // Give the New York members a population; Barcelona stays Null.
        // (Re-load one row with the attribute set: the dimension member
        // already exists, so we need a fresh warehouse instead.)
        let mut wh2 = Warehouse::new(last_minute_sales());
        for (airport, city, pop, price) in [
            ("El Prat", "Barcelona", 1_600_000i64, 100.0),
            ("JFK", "New York", 8_300_000, 300.0),
            ("La Guardia", "New York", 8_300_000, 260.0),
        ] {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(price))
                .measure("miles", Value::Float(1000.0))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", Value::text(airport)),
                        ("city_name", Value::text(city)),
                        ("population", Value::Int(pop)),
                    ],
                )
                .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                .role_member("Date", &[("date", Value::date(2004, 1, 2).unwrap())]);
            wh2.load("Last Minute Sales", vec![b.build()]).unwrap();
        }
        std::mem::swap(&mut wh, &mut wh2);
        let rs = CubeQuery::on("Last Minute Sales")
            .filter_attribute(
                "Destination",
                "population",
                Predicate::Between(Value::Int(5_000_000), Value::Int(10_000_000)),
            )
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Count)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::text("New York"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        // Unknown attributes are rejected up front.
        assert!(matches!(
            CubeQuery::on("Last Minute Sales")
                .filter_attribute("Destination", "altitude", Predicate::Eq(Value::Int(1)))
                .run(&wh),
            Err(WarehouseError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn order_by_and_limit_give_top_k() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "Airport")
            .aggregate("price", AggFn::Sum)
            .order_by("sum(price)", true)
            .limit(2)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.f64(0, "sum(price)").unwrap() >= rs.f64(1, "sum(price)").unwrap());
        assert_eq!(rs.rows[0][0], Value::text("JFK"));
        // Ordering by an unknown column is an error.
        assert!(CubeQuery::on("Last Minute Sales")
            .aggregate("price", AggFn::Sum)
            .order_by("nope", false)
            .run(&wh)
            .is_err());
        // Ascending order is the reverse.
        let asc = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "Airport")
            .aggregate("price", AggFn::Sum)
            .order_by("sum(price)", false)
            .run(&wh)
            .unwrap();
        assert!(asc.f64(0, "sum(price)").unwrap() <= asc.f64(1, "sum(price)").unwrap());
    }

    #[test]
    fn join_drills_across_facts() {
        let left = ResultSet {
            columns: vec!["city".into(), "date".into(), "sales".into()],
            rows: vec![
                vec![
                    Value::text("Barcelona"),
                    Value::text("2004-01-01"),
                    Value::Int(3),
                ],
                vec![
                    Value::text("Barcelona"),
                    Value::text("2004-01-02"),
                    Value::Int(1),
                ],
                vec![
                    Value::text("Madrid"),
                    Value::text("2004-01-01"),
                    Value::Int(2),
                ],
            ],
        };
        let right = ResultSet {
            columns: vec!["c".into(), "d".into(), "temp".into()],
            rows: vec![
                vec![
                    Value::text("Barcelona"),
                    Value::text("2004-01-01"),
                    Value::Float(8.0),
                ],
                vec![
                    Value::text("Madrid"),
                    Value::text("2004-01-01"),
                    Value::Float(5.0),
                ],
                vec![
                    Value::text("Paris"),
                    Value::text("2004-01-01"),
                    Value::Float(4.0),
                ],
            ],
        };
        let joined = left.join(&right, &[("city", "c"), ("date", "d")]).unwrap();
        assert_eq!(joined.columns, ["city", "date", "sales", "temp"]);
        // Barcelona day 2 has no weather; Paris has no sales.
        assert_eq!(joined.rows.len(), 2);
        assert_eq!(
            joined.rows[0],
            vec![
                Value::text("Barcelona"),
                Value::text("2004-01-01"),
                Value::Int(3),
                Value::Float(8.0)
            ]
        );
        // Unknown join columns error out.
        assert!(left.join(&right, &[("nope", "c")]).is_err());
        assert!(left.join(&right, &[("city", "nope")]).is_err());
    }

    #[test]
    fn join_duplicates_multiply() {
        let left = ResultSet {
            columns: vec!["k".into(), "a".into()],
            rows: vec![vec![Value::Int(1), Value::text("x")]],
        };
        let right = ResultSet {
            columns: vec!["k".into(), "b".into()],
            rows: vec![
                vec![Value::Int(1), Value::text("p")],
                vec![Value::Int(1), Value::text("q")],
            ],
        };
        let joined = left.join(&right, &[("k", "k")]).unwrap();
        assert_eq!(joined.rows.len(), 2);
    }

    #[test]
    fn to_csv_quotes_correctly() {
        let rs = ResultSet {
            columns: vec!["city, name".into(), "sum(price)".into()],
            rows: vec![vec![Value::text("New \"Big\" York"), Value::Float(9.5)]],
        };
        let csv = rs.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("\"city, name\",sum(price)"));
        assert_eq!(lines.next(), Some("\"New \"\"Big\"\" York\",9.5"));
    }

    #[test]
    fn to_table_renders_all_rows() {
        let wh = loaded_warehouse();
        let rs = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum)
            .run(&wh)
            .unwrap();
        let table = rs.to_table();
        assert!(table.contains("Barcelona"));
        assert!(table.contains("New York"));
        assert!(table.contains("sum(price)"));
    }
}
