//! Warehouse persistence: JSON snapshots.
//!
//! Step 5 accumulates fed data over many QA sessions; a warehouse must
//! outlive the process. A [`WarehouseSnapshot`] is a portable, schema-
//! checked dump: the multidimensional schema plus every dimension member
//! and fact row as typed [`Value`]s. Restoring replays the rows through
//! the normal validated paths, so a corrupted snapshot is rejected rather
//! than half-loaded.

use crate::dimension::MemberKey;
use crate::error::{Result, WarehouseError};
use crate::value::Value;
use crate::warehouse::Warehouse;
use dwqa_mdmodel::Schema;
use serde::{Deserialize, Serialize};

/// A dimension's members, row-wise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionSnapshot {
    /// Dimension name.
    pub name: String,
    /// Qualified column names (`City.city_name`, …), storage order.
    pub columns: Vec<String>,
    /// One row per member, in surrogate-key order.
    pub rows: Vec<Vec<Value>>,
}

/// A fact table's rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactSnapshot {
    /// Fact name.
    pub name: String,
    /// Per row: the surrogate keys, ordered like the fact's roles.
    pub role_keys: Vec<Vec<u32>>,
    /// Per row: the measure values, ordered like the fact's measures.
    pub measures: Vec<Vec<Value>>,
}

/// A complete, portable warehouse dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseSnapshot {
    /// The multidimensional schema.
    pub schema: Schema,
    /// All dimension tables.
    pub dimensions: Vec<DimensionSnapshot>,
    /// All fact tables.
    pub facts: Vec<FactSnapshot>,
}

impl Warehouse {
    /// Dumps the warehouse into a snapshot.
    pub fn snapshot(&self) -> WarehouseSnapshot {
        let schema = self.schema().clone();
        let mut dimensions = Vec::new();
        for dim in schema.dimensions() {
            let table = self.dimension(&dim.name).expect("schema dimension exists");
            let columns: Vec<String> = table.column_names().map(str::to_owned).collect();
            let rows: Vec<Vec<Value>> = table
                .keys()
                .map(|key| {
                    columns
                        .iter()
                        .map(|c| table.attribute_value(key, c).expect("column exists"))
                        .collect()
                })
                .collect();
            dimensions.push(DimensionSnapshot {
                name: dim.name.clone(),
                columns,
                rows,
            });
        }
        let mut facts = Vec::new();
        for fact in schema.facts() {
            let table = self.fact(&fact.name).expect("schema fact exists");
            let mut role_keys = Vec::with_capacity(table.len());
            let mut measures = Vec::with_capacity(table.len());
            for row in 0..table.len() {
                role_keys.push(
                    (0..fact.roles.len())
                        .map(|r| table.role_key(row, r).index() as u32)
                        .collect(),
                );
                measures.push(
                    (0..fact.measures.len())
                        .map(|m| table.measure_column(m).get(row))
                        .collect(),
                );
            }
            facts.push(FactSnapshot {
                name: fact.name.clone(),
                role_keys,
                measures,
            });
        }
        WarehouseSnapshot {
            schema,
            dimensions,
            facts,
        }
    }

    /// Restores a warehouse from a snapshot, re-validating every row.
    pub fn restore(snapshot: &WarehouseSnapshot) -> Result<Warehouse> {
        let mut wh = Warehouse::new(snapshot.schema.clone());
        // Dimensions first: members must exist before facts reference them.
        for dim_snap in &snapshot.dimensions {
            let (dim_id, _) = snapshot
                .schema
                .dimension(&dim_snap.name)
                .ok_or_else(|| WarehouseError::UnknownDimension(dim_snap.name.clone()))?;
            for (expected_key, row) in dim_snap.rows.iter().enumerate() {
                if row.len() != dim_snap.columns.len() {
                    return Err(WarehouseError::IncompleteRow(format!(
                        "dimension {:?}: row width {} vs {} columns",
                        dim_snap.name,
                        row.len(),
                        dim_snap.columns.len()
                    )));
                }
                let spec: Vec<(String, Value)> = dim_snap
                    .columns
                    .iter()
                    .cloned()
                    .zip(row.iter().cloned())
                    .filter(|(_, v)| !v.is_null())
                    .collect();
                // Replaying rows in storage order must reproduce the
                // snapshot's surrogate keys exactly — a duplicated or
                // reordered member row would silently remap every fact
                // key pointing at it, so reject the snapshot instead.
                let key = wh.dimension_table_raw_mut(dim_id).lookup_or_insert(&spec)?;
                if key.index() != expected_key {
                    return Err(WarehouseError::IncompleteRow(format!(
                        "dimension {:?}: row {expected_key} restored as surrogate key {} \
                         (duplicated or out-of-order member row)",
                        dim_snap.name,
                        key.index()
                    )));
                }
            }
        }
        for fact_snap in &snapshot.facts {
            let (fact_id, fact_model) = snapshot
                .schema
                .fact(&fact_snap.name)
                .ok_or_else(|| WarehouseError::UnknownFact(fact_snap.name.clone()))?;
            if fact_snap.role_keys.len() != fact_snap.measures.len() {
                return Err(WarehouseError::IncompleteRow(format!(
                    "fact {:?}: {} key rows vs {} measure rows",
                    fact_snap.name,
                    fact_snap.role_keys.len(),
                    fact_snap.measures.len()
                )));
            }
            for (keys, measures) in fact_snap.role_keys.iter().zip(&fact_snap.measures) {
                // Keys must reference restored members.
                for (key, role) in keys.iter().zip(&fact_model.roles) {
                    let dim = snapshot.schema.dimension_by_id(role.dimension);
                    let table = wh.dimension(&dim.name)?;
                    if *key as usize >= table.len() {
                        return Err(WarehouseError::IncompleteRow(format!(
                            "fact {:?}: surrogate key {key} out of range for {:?}",
                            fact_snap.name, dim.name
                        )));
                    }
                }
                let keys: Vec<MemberKey> = keys.iter().map(|&k| MemberKey(k)).collect();
                wh.fact_table_raw_mut(fact_id).insert(&keys, measures)?;
            }
        }
        // One bump for the whole replay: a restore is one logical
        // mutation, not one per row.
        wh.bump_revision();
        Ok(wh)
    }

    /// Serialises the snapshot as JSON, with a typed error on failure.
    pub fn try_to_json(&self) -> Result<String> {
        serde_json::to_string(&self.snapshot()).map_err(|e| {
            WarehouseError::IncompleteRow(format!("snapshot failed to serialise: {e}"))
        })
    }

    /// Serialises the snapshot as JSON.
    ///
    /// # Panics
    /// Only if serialisation fails, which is impossible for well-formed
    /// snapshot types; fallible callers should use
    /// [`Warehouse::try_to_json`].
    pub fn to_json(&self) -> String {
        #[allow(clippy::expect_used)]
        self.try_to_json().expect("snapshot serialises")
    }

    /// Restores from [`Warehouse::to_json`] output.
    pub fn from_json(json: &str) -> Result<Warehouse> {
        let snapshot: WarehouseSnapshot = serde_json::from_str(json)
            .map_err(|e| WarehouseError::IncompleteRow(format!("invalid snapshot JSON: {e}")))?;
        Warehouse::restore(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etl::FactRowBuilder;
    use crate::query::{AggFn, CubeQuery};
    use dwqa_mdmodel::last_minute_sales;
    use proptest::prelude::*;

    fn loaded() -> Warehouse {
        let mut wh = Warehouse::new(last_minute_sales());
        for (dest, city, day, price) in [
            ("El Prat", "Barcelona", 1, 100.0),
            ("JFK", "New York", 2, 300.0),
            ("El Prat", "Barcelona", 3, 140.0),
        ] {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(price))
                .measure("miles", Value::Float(1000.0))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", Value::text(dest)),
                        ("city_name", Value::text(city)),
                    ],
                )
                .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
            wh.load("Last Minute Sales", vec![b.build()]).unwrap();
        }
        wh
    }

    fn query(wh: &Warehouse) -> crate::query::ResultSet {
        CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .group_by("Date", "Month")
            .aggregate("price", AggFn::Sum)
            .aggregate("price", AggFn::Count)
            .run(wh)
            .unwrap()
    }

    #[test]
    fn json_round_trip_preserves_query_results() {
        let wh = loaded();
        let json = wh.to_json();
        let restored = Warehouse::from_json(&json).unwrap();
        assert_eq!(query(&wh), query(&restored));
        assert_eq!(
            wh.fact("Last Minute Sales").unwrap().len(),
            restored.fact("Last Minute Sales").unwrap().len()
        );
        assert_eq!(
            wh.dimension("Airport").unwrap().len(),
            restored.dimension("Airport").unwrap().len()
        );
    }

    #[test]
    fn snapshot_preserves_surrogate_keys() {
        let wh = loaded();
        let snap = wh.snapshot();
        let fact = &snap.facts[0];
        // Rows 0 and 2 share the El Prat destination member.
        let dest_role = 1; // Origin, Destination, Customer, Date
        assert_eq!(fact.role_keys[0][dest_role], fact.role_keys[2][dest_role]);
        assert_ne!(fact.role_keys[0][dest_role], fact.role_keys[1][dest_role]);
    }

    #[test]
    fn restore_bumps_the_revision_exactly_once() {
        let wh = loaded();
        let restored = Warehouse::restore(&wh.snapshot()).unwrap();
        // A restore is a single logical mutation regardless of row
        // count: replaying N rows must not look like N commits.
        assert_eq!(restored.revision(), 1);
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let wh = loaded();
        let mut snap = wh.snapshot();
        // Out-of-range surrogate key.
        snap.facts[0].role_keys[0][0] = 999;
        assert!(matches!(
            Warehouse::restore(&snap),
            Err(WarehouseError::IncompleteRow(_))
        ));
        // Garbage JSON.
        assert!(Warehouse::from_json("{not json").is_err());
        // Mismatched row widths.
        let mut snap = wh.snapshot();
        snap.dimensions[0].rows[0].pop();
        assert!(Warehouse::restore(&snap).is_err());
        // Truncated JSON (a torn write that cut the dump short).
        let json = wh.to_json();
        assert!(Warehouse::from_json(&json[..json.len() / 2]).is_err());
        // Schema mismatch: the tables no longer match the schema.
        let mut snap = wh.snapshot();
        snap.dimensions[0].name = "Imaginary".to_owned();
        assert!(matches!(
            Warehouse::restore(&snap),
            Err(WarehouseError::UnknownDimension(_))
        ));
        let mut snap = wh.snapshot();
        snap.facts[0].name = "Imaginary".to_owned();
        assert!(matches!(
            Warehouse::restore(&snap),
            Err(WarehouseError::UnknownFact(_))
        ));
    }

    #[test]
    fn duplicated_or_reordered_member_rows_are_rejected() {
        let wh = loaded();
        // A duplicated member row would collapse into one key on
        // replay and shift every later surrogate key down by one.
        let mut snap = wh.snapshot();
        let dup = snap.dimensions[0].rows[0].clone();
        snap.dimensions[0].rows.insert(1, dup);
        let err = Warehouse::restore(&snap).unwrap_err();
        assert!(
            matches!(err, WarehouseError::IncompleteRow(ref m) if m.contains("surrogate key")),
            "{err}"
        );
        // Appending a stray member row past the originals also breaks
        // the row-per-key correspondence once anything collides; a
        // *duplicate* of an earlier row is the detectable case.
        let mut snap = wh.snapshot();
        let last = snap.dimensions[0].rows.last().cloned().unwrap();
        snap.dimensions[0].rows.push(last);
        assert!(Warehouse::restore(&snap).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_round_trip_any_price_set(prices in proptest::collection::vec(0.0f64..500.0, 1..20)) {
            let mut wh = Warehouse::new(last_minute_sales());
            for (i, p) in prices.iter().enumerate() {
                let mut b = FactRowBuilder::new();
                b.measure("price", Value::Float(*p))
                    .measure("miles", Value::Float(1.0))
                    .measure("traveler_rate", Value::Float(0.5))
                    .role_member("Origin", &[("airport_name", Value::text("O"))])
                    .role_member(
                        "Destination",
                        &[("airport_name", Value::text(format!("D{}", i % 4)))],
                    )
                    .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                    .role_member(
                        "Date",
                        &[("date", Value::date(2004, 1, (i % 28 + 1) as u32).unwrap())],
                    );
                wh.load("Last Minute Sales", vec![b.build()]).unwrap();
            }
            let restored = Warehouse::from_json(&wh.to_json()).unwrap();
            prop_assert_eq!(query(&wh), query(&restored));
        }

        /// Stronger than query equivalence: `snapshot → restore →
        /// snapshot` is byte-identical, so recovery comparisons (and
        /// the durable store's checkpoints) can use the serialized
        /// form directly.
        #[test]
        fn prop_snapshot_restore_snapshot_is_byte_identical(
            prices in proptest::collection::vec(0.0f64..500.0, 1..20),
        ) {
            let mut wh = Warehouse::new(last_minute_sales());
            for (i, p) in prices.iter().enumerate() {
                let mut b = FactRowBuilder::new();
                b.measure("price", Value::Float(*p))
                    .measure("miles", Value::Float(1.0))
                    .measure("traveler_rate", Value::Float(0.5))
                    .role_member("Origin", &[("airport_name", Value::text("O"))])
                    .role_member(
                        "Destination",
                        &[("airport_name", Value::text(format!("D{}", i % 4)))],
                    )
                    .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                    .role_member(
                        "Date",
                        &[("date", Value::date(2004, 1, (i % 28 + 1) as u32).unwrap())],
                    );
                wh.load("Last Minute Sales", vec![b.build()]).unwrap();
            }
            let json = wh.to_json();
            let restored = Warehouse::from_json(&json).unwrap();
            prop_assert_eq!(json, restored.to_json());
        }
    }
}
