//! Deterministic, seed-decoded generators shared by the differential
//! test suites (`tests/compiled_parity.rs`, `tests/incremental_parity.rs`)
//! and the experiment binaries.
//!
//! The vendored proptest stand-in only offers primitive strategies, so
//! test cases are seeded from raw `u64`s and decoded into corpora and
//! query specs with a splitmix64 stream ([`Mix`]); a failing case prints
//! its seeds, which reproduce deterministically. Centralising the
//! decoders here keeps every consumer byte-compatible: the same seed
//! yields the same warehouse in a parity proptest, an incremental-
//! maintenance proptest, and a benchmark.

use crate::etl::{FactRow, FactRowBuilder};
use crate::query::{AggFn, CubeQuery, Predicate};
use crate::value::Value;
use crate::warehouse::Warehouse;

/// City pool for synthetic airports (shared across hierarchy levels so
/// roll-up merging is exercised).
pub const CITIES: [&str; 5] = ["Barcelona", "Madrid", "Paris", "Rome", "Berlin"];
/// Country pool for synthetic airports.
pub const COUNTRIES: [&str; 3] = ["Spain", "France", "Italy"];
/// The measures of the `last_minute_sales` schema.
pub const MEASURES: [&str; 3] = ["price", "miles", "traveler_rate"];
/// Every aggregation function, including combinations that must fail
/// additivity checks when decoded onto a non-additive measure.
pub const FNS: [AggFn; 5] = [AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max, AggFn::Count];

/// Group-by coordinates the query decoder draws from; every hierarchy
/// depth appears so roll-up merging is exercised.
pub const COORDS: [(&str, &str); 8] = [
    ("Destination", "Airport"),
    ("Destination", "City"),
    ("Destination", "Country"),
    ("Origin", "City"),
    ("Customer", "Customer"),
    ("Date", "Date"),
    ("Date", "Month"),
    ("Date", "Year"),
];

/// Deterministic word stream (splitmix64) for decoding seeds into
/// structure.
#[derive(Debug, Clone)]
pub struct Mix(pub u64);

impl Mix {
    /// The next raw 64-bit word of the stream.
    pub fn word(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A word reduced below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.word() % n
    }

    /// True one time in `one_in` on average.
    pub fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// The member spec of synthetic airport `idx`: city and country from the
/// shared pools; some cities carry a population attribute, some stay
/// Null — the attribute-filter paths must agree on both.
pub fn airport_spec(idx: usize) -> Vec<(&'static str, Value)> {
    let city = CITIES[idx % CITIES.len()];
    let country = COUNTRIES[idx % COUNTRIES.len()];
    let mut spec = vec![
        ("airport_name", Value::text(format!("AP{idx}"))),
        ("city_name", Value::text(city)),
        ("country_name", Value::text(country)),
    ];
    if idx % 3 != 0 {
        spec.push(("population", Value::Int(500_000 * (idx as i64 + 1))));
    }
    spec
}

/// One synthetic sale decoded from a seed word (the proptest corpus
/// shape: 10 airports, 4 customers, January 2004, occasional Null
/// price).
pub fn sales_row(seed: u64) -> FactRow {
    let mut m = Mix(seed);
    let origin = m.below(10) as usize;
    let dest = m.below(10) as usize;
    let customer = m.below(4);
    let day = m.below(27) as u32 + 1;
    let price = if m.chance(8) {
        Value::Null
    } else {
        Value::Float(m.below(50_000) as f64 / 100.0)
    };
    let miles = m.below(200_000) as f64 / 100.0;
    let rate = m.below(1_000) as f64 / 1_000.0;
    let mut b = FactRowBuilder::new();
    b.measure("price", price)
        .measure("miles", Value::Float(miles))
        .measure("traveler_rate", Value::Float(rate))
        .role_member("Origin", &airport_spec(origin))
        .role_member("Destination", &airport_spec(dest))
        .role_member(
            "Customer",
            &[("customer_name", Value::text(format!("C{customer}")))],
        )
        .role_member(
            "Date",
            &[("date", Value::date(2004, 1, day).unwrap_or(Value::Null))],
        );
    b.build()
}

/// A batch of [`sales_row`]s, one per seed.
pub fn sales_batch(row_seeds: &[u64]) -> Vec<FactRow> {
    row_seeds.iter().map(|&s| sales_row(s)).collect()
}

/// A `last_minute_sales` warehouse loaded with one [`sales_row`] per
/// seed.
///
/// # Panics
/// If the synthetic batch fails to load — decoded rows are well-formed
/// by construction, so a rejection is a bug worth failing loudly on.
pub fn build_warehouse(row_seeds: &[u64]) -> Warehouse {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let report = wh
        .load("Last Minute Sales", sales_batch(row_seeds))
        .expect("synthetic batch loads");
    assert!(report.rejected.is_empty(), "synthetic rows must all load");
    wh
}

/// Decodes a query spec: group-bys, aggregates (including combinations
/// that must fail additivity checks), level / attribute / date filters,
/// order-by (sometimes on an unknown column), and a limit.
pub fn build_query(seed: u64) -> CubeQuery {
    let mut m = Mix(seed);
    let mut q = CubeQuery::on("Last Minute Sales");

    // Filters first, as a caller would build them.
    if m.chance(2) {
        let p = match m.below(3) {
            0 => Predicate::Eq(Value::text(CITIES[m.below(5) as usize])),
            1 => {
                let n = m.below(3) as usize;
                Predicate::In(
                    (0..n)
                        .map(|_| Value::text(CITIES[m.below(5) as usize]))
                        .collect(),
                )
            }
            _ => {
                let a = m.below(5) as usize;
                let b = m.below(5) as usize;
                Predicate::Between(Value::text(CITIES[a.min(b)]), Value::text(CITIES[a.max(b)]))
            }
        };
        q = q.filter("Destination", "City", p);
    }
    if m.chance(3) {
        let a = m.below(6_000_000) as i64;
        let b = m.below(6_000_000) as i64;
        q = q.filter_attribute(
            "Destination",
            "population",
            Predicate::Between(Value::Int(a.min(b)), Value::Int(a.max(b))),
        );
    }
    if m.chance(3) {
        let a = m.below(27) as u32 + 1;
        let b = m.below(27) as u32 + 1;
        q = q.filter(
            "Date",
            "Date",
            Predicate::Between(
                Value::date(2004, 1, a.min(b)).unwrap_or(Value::Null),
                Value::date(2004, 1, b.max(a)).unwrap_or(Value::Null),
            ),
        );
    }
    // Occasionally an invalid level: error parity.
    if m.chance(16) {
        q = q.filter("Origin", "Galaxy", Predicate::Eq(Value::text("x")));
    }

    let mut columns: Vec<String> = Vec::new();
    let n_groups = m.below(4) as usize; // 0..=3 coordinates
    for _ in 0..n_groups {
        let (role, level) = COORDS[m.below(COORDS.len() as u64) as usize];
        q = q.group_by(role, level);
        columns.push(format!("{role}.{level}"));
    }
    let n_aggs = m.below(2) as usize + 1; // 1..=2 aggregates
    for _ in 0..n_aggs {
        let measure = MEASURES[m.below(3) as usize];
        let f = FNS[m.below(5) as usize];
        q = q.aggregate(measure, f);
        columns.push(format!("{}({measure})", f.label()));
    }

    if m.chance(16) {
        q = q.order_by("no_such_column", false);
    } else if m.chance(2) {
        let idx = m.below(columns.len() as u64) as usize;
        q = q.order_by(&columns[idx], m.chance(2));
    }
    if m.chance(3) {
        q = q.limit(m.below(6) as usize);
    }
    q
}

/// A batch of benchmark-scale sales drawn from a continuous [`Mix`]
/// stream: `airports` distinct airports, 16 customers, never-Null
/// measures (benchmarks want every row on the accumulate path).
pub fn synthetic_batch(m: &mut Mix, rows: usize, airports: usize) -> Vec<FactRow> {
    (0..rows)
        .map(|_| {
            let origin = m.below(airports as u64) as usize;
            let dest = m.below(airports as u64) as usize;
            let customer = m.below(16);
            let day = m.below(27) as u32 + 1;
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(m.below(50_000) as f64 / 100.0))
                .measure("miles", Value::Float(m.below(200_000) as f64 / 100.0))
                .measure(
                    "traveler_rate",
                    Value::Float(m.below(1_000) as f64 / 1_000.0),
                )
                .role_member("Origin", &airport_spec(origin))
                .role_member("Destination", &airport_spec(dest))
                .role_member(
                    "Customer",
                    &[("customer_name", Value::text(format!("C{customer}")))],
                )
                .role_member(
                    "Date",
                    &[("date", Value::date(2004, 1, day).unwrap_or(Value::Null))],
                );
            b.build()
        })
        .collect()
}

/// A warehouse with `rows` benchmark-scale sales over `airports`
/// distinct airports (deterministic — same seed, same warehouse).
///
/// # Panics
/// If the synthetic batch fails to load; see [`build_warehouse`].
pub fn synthetic_warehouse(rows: usize, airports: usize, seed: u64) -> Warehouse {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let mut m = Mix(seed);
    let report = wh
        .load("Last Minute Sales", synthetic_batch(&mut m, rows, airports))
        .expect("synthetic batch loads");
    assert!(report.rejected.is_empty(), "synthetic rows must all load");
    wh
}
