//! Dynamically-typed cell values exchanged with the engine.

use dwqa_common::Date;
use dwqa_mdmodel::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
///
/// `Value` is the boundary type: ETL rows come in as `Value`s and query
/// results go out as `Value`s. Inside the engine, data lives in typed
/// columns ([`crate::Column`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Calendar date.
    Date(Date),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for dates; `None` if the date is invalid.
    pub fn date(year: i32, month: u32, day: u32) -> Option<Value> {
        Date::from_ymd(year, month, day).map(Value::Date)
    }

    /// The declared type this value conforms to, if any (`Null` conforms to
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    /// Integers widen to float columns; everything else must match exactly.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Date(_), DataType::Date)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Whether the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to f64); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints hash as the float they widen to, so Int(3) == Float(3.0)
            // hash identically (required by the Eq impl above).
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                if f.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for deterministic result sorting: Null < Bool <
    /// numbers < dates < text; numbers compare numerically across Int/Float.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Date(_) => 3,
                Value::Text(_) => 4,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_f64().expect("rank 2 is numeric");
                let fb = b.as_f64().expect("rank 2 is numeric");
                fa.partial_cmp(&fb).unwrap_or_else(|| {
                    // NaNs sort last among numbers, deterministically.
                    match (fa.is_nan(), fb.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("partial_cmp failed on non-NaN"),
                    }
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Int(3).conforms_to(DataType::Int));
        assert!(Value::Int(3).conforms_to(DataType::Float));
        assert!(!Value::Float(3.0).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Date));
        assert!(!Value::text("x").conforms_to(DataType::Date));
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::date(2004, 1, 31).unwrap(),
            Value::Float(1.5),
            Value::Bool(true),
            Value::text("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(2),
                Value::date(2004, 1, 31).unwrap(),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn nan_sorts_last_among_numbers_and_equals_itself() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(nan.cmp(&Value::Float(1.0)), Ordering::Greater);
        assert_eq!(Value::Float(1.0).cmp(&nan), Ordering::Less);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::date(2004, 2, 30).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::date(2004, 1, 31).unwrap().to_string(), "2004-01-31");
        assert_eq!(Value::Float(8.0).to_string(), "8");
    }
}
