//! The warehouse: schema + materialised tables + the load path.

use crate::dimension::DimensionTable;
use crate::error::{Result, WarehouseError};
use crate::etl::{autofill_date_levels, EtlReport, FactRow, Rejection};
use crate::fact::FactTable;
use crate::plan::CompiledRollup;
use crate::query::CubeQuery;
use dwqa_mdmodel::Schema;
use dwqa_obs::names as obs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Upper bound on cached compiled plans; the workloads the engine sees
/// (dwquery, analysis, the REPL) reuse a handful of query shapes, so the
/// cache is simply cleared when it fills rather than tracking LRU order.
const PLAN_CACHE_CAPACITY: usize = 128;

/// A data warehouse materialising one multidimensional [`Schema`].
#[derive(Debug)]
pub struct Warehouse {
    schema: Schema,
    dimensions: Vec<DimensionTable>,
    facts: Vec<FactTable>,
    /// Bumped on every mutation; compiled plans and cached roll-up
    /// results are tagged with the revision they were built against and
    /// discarded when it moves.
    revision: u64,
    /// Compiled-plan cache, keyed by the query's canonical (serialized)
    /// form. Interior mutability so `CubeQuery::run(&Warehouse)` can
    /// populate it through a shared reference.
    plans: Mutex<HashMap<String, Arc<CompiledRollup>>>,
}

impl Clone for Warehouse {
    /// Clones the data; the plan cache starts empty in the clone (plans
    /// are revision-tagged derivations, cheap to recompile on demand).
    fn clone(&self) -> Warehouse {
        Warehouse {
            schema: self.schema.clone(),
            dimensions: self.dimensions.clone(),
            facts: self.facts.clone(),
            revision: self.revision,
            plans: Mutex::new(HashMap::new()),
        }
    }
}

impl Warehouse {
    /// Creates an empty warehouse for the schema.
    pub fn new(schema: Schema) -> Warehouse {
        let dimensions = schema
            .dimensions()
            .iter()
            .map(DimensionTable::new)
            .collect();
        let facts = schema.facts().iter().map(FactTable::new).collect();
        Warehouse {
            schema,
            dimensions,
            facts,
            revision: 0,
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The warehouse's mutation counter. Every change that could affect
    /// query results (loads, restores) bumps it; caches key on it.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn plans(&self) -> MutexGuard<'_, HashMap<String, Arc<CompiledRollup>>> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always in a usable state.
        match self.plans.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a compiled plan for `query` at the current revision,
    /// reusing a cached one when the warehouse has not changed since it
    /// was compiled.
    pub fn plan(&self, query: &CubeQuery) -> Result<Arc<CompiledRollup>> {
        let Ok(key) = serde_json::to_string(query) else {
            // Unserializable queries (shouldn't happen for well-formed
            // values) just compile uncached.
            return Ok(Arc::new(CompiledRollup::compile(query, self)?));
        };
        {
            let mut plans = self.plans();
            match plans.get(&key) {
                Some(plan) if plan.revision() == self.revision => {
                    dwqa_obs::counter_add(obs::WAREHOUSE_PLANS_REUSED, 1);
                    return Ok(Arc::clone(plan));
                }
                Some(_) => {
                    plans.remove(&key);
                }
                None => {}
            }
        }
        // Compile outside the lock; duplicated work on a race is benign.
        let plan = Arc::new(CompiledRollup::compile(query, self)?);
        dwqa_obs::counter_add(obs::WAREHOUSE_PLANS_COMPILED, 1);
        let mut plans = self.plans();
        if plans.len() >= PLAN_CACHE_CAPACITY {
            plans.clear();
        }
        plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// The schema this warehouse materialises.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dimension table by name.
    pub fn dimension(&self, name: &str) -> Result<&DimensionTable> {
        let (id, _) = self
            .schema
            .dimension(name)
            .ok_or_else(|| WarehouseError::UnknownDimension(name.to_owned()))?;
        Ok(&self.dimensions[id.index()])
    }

    /// The fact table by name.
    pub fn fact(&self, name: &str) -> Result<&FactTable> {
        let (id, _) = self
            .schema
            .fact(name)
            .ok_or_else(|| WarehouseError::UnknownFact(name.to_owned()))?;
        Ok(&self.facts[id.index()])
    }

    /// Raw mutable table access **without** a revision bump. Mutation
    /// paths (load, restore) bump the revision once per logical commit
    /// via [`Self::bump_revision`] instead of once per borrowed table —
    /// per-borrow bumping evicted every cached plan N times during a
    /// restore and made read-modify helpers look like N mutations.
    pub(crate) fn dimension_table_raw_mut(
        &mut self,
        id: dwqa_mdmodel::DimensionId,
    ) -> &mut DimensionTable {
        &mut self.dimensions[id.index()]
    }

    /// See [`Self::dimension_table_raw_mut`].
    pub(crate) fn fact_table_raw_mut(&mut self, id: dwqa_mdmodel::FactId) -> &mut FactTable {
        &mut self.facts[id.index()]
    }

    /// Records one logical mutation: caches keyed on the revision treat
    /// everything computed before this call as stale.
    pub(crate) fn bump_revision(&mut self) {
        self.revision += 1;
    }

    /// Captures the current table extents so a later
    /// [`Self::delta_since`] can describe what a commit appended.
    pub fn delta_tracker(&self) -> DeltaTracker {
        DeltaTracker {
            revision: self.revision,
            fact_rows: self.facts.iter().map(FactTable::len).collect(),
            dim_members: self.dimensions.iter().map(DimensionTable::len).collect(),
        }
    }

    /// Describes the mutations since `tracker` as a typed, pure-append
    /// [`WarehouseDelta`]: per-table row/member counts before and after.
    ///
    /// Returns `None` when the change is *not* a pure append — a table
    /// shrank or the schema arity changed (e.g. the warehouse object was
    /// replaced wholesale) — in which case callers must fall back to
    /// full invalidation.
    pub fn delta_since(&self, tracker: &DeltaTracker) -> Option<WarehouseDelta> {
        if tracker.fact_rows.len() != self.facts.len()
            || tracker.dim_members.len() != self.dimensions.len()
        {
            return None;
        }
        let fact_rows: Vec<(usize, usize)> = tracker
            .fact_rows
            .iter()
            .zip(&self.facts)
            .map(|(&before, t)| (before, t.len()))
            .collect();
        let dim_members: Vec<(usize, usize)> = tracker
            .dim_members
            .iter()
            .zip(&self.dimensions)
            .map(|(&before, t)| (before, t.len()))
            .collect();
        if fact_rows.iter().any(|&(b, a)| a < b) || dim_members.iter().any(|&(b, a)| a < b) {
            return None;
        }
        Some(WarehouseDelta {
            base_revision: tracker.revision,
            new_revision: self.revision,
            fact_rows,
            dim_members,
        })
    }

    pub(crate) fn dimension_table_for_role(
        &self,
        fact: &FactTable,
        role_idx: usize,
    ) -> &DimensionTable {
        let dim_id = fact.model().roles[role_idx].dimension;
        &self.dimensions[dim_id.index()]
    }

    /// A human-readable summary: facts and dimensions with their row
    /// counts (what the REPL and examples print as a health check).
    pub fn stats(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for f in self.schema.facts() {
            out.push((
                format!("fact {}", f.name),
                self.fact(&f.name).map(|t| t.len()).unwrap_or(0),
            ));
        }
        for d in self.schema.dimensions() {
            out.push((
                format!("dimension {}", d.name),
                self.dimension(&d.name).map(|t| t.len()).unwrap_or(0),
            ));
        }
        out
    }

    /// Loads a batch of rows into the named fact table.
    ///
    /// Rows are processed independently: a bad row is recorded in the
    /// report's `rejected` list and the rest of the batch continues. Member
    /// specs for date dimensions get their calendar levels auto-derived
    /// (see [`autofill_date_levels`]).
    pub fn load(&mut self, fact_name: &str, rows: Vec<FactRow>) -> Result<EtlReport> {
        let (fact_id, fact_model) = self
            .schema
            .fact(fact_name)
            .ok_or_else(|| WarehouseError::UnknownFact(fact_name.to_owned()))?;
        let fact_model = fact_model.clone();
        // Even an all-rejected batch is a conservative invalidation: the
        // revision moves and stale plans get recompiled, which is cheap.
        self.revision += 1;
        let mut report = EtlReport::default();
        let mut created: HashMap<String, usize> = HashMap::new();

        'rows: for (row_idx, row) in rows.into_iter().enumerate() {
            // Resolve measures in model order.
            let mut measure_values = Vec::with_capacity(fact_model.measures.len());
            for m in &fact_model.measures {
                match row.measures.iter().find(|(n, _)| n == &m.name) {
                    Some((_, v)) => measure_values.push(v.clone()),
                    None => {
                        report.rejected.push(Rejection {
                            row: row_idx,
                            reason: format!("missing measure {:?}", m.name),
                        });
                        continue 'rows;
                    }
                }
            }
            for (name, _) in &row.measures {
                if fact_model.measure(name).is_none() {
                    report.rejected.push(Rejection {
                        row: row_idx,
                        reason: format!("unknown measure {:?}", name),
                    });
                    continue 'rows;
                }
            }
            // Resolve role members in model order, creating members lazily.
            // Keys are resolved into a staging vec first; dimension inserts
            // are idempotent, so earlier member creation is harmless even
            // if a later role of the same row fails.
            let mut keys = Vec::with_capacity(fact_model.roles.len());
            for role in &fact_model.roles {
                let Some((_, spec)) = row.roles.iter().find(|(r, _)| r == &role.role) else {
                    report.rejected.push(Rejection {
                        row: row_idx,
                        reason: format!("missing role {:?}", role.role),
                    });
                    continue 'rows;
                };
                let dim_table = &mut self.dimensions[role.dimension.index()];
                let before = dim_table.len();
                let mut spec = spec.clone();
                autofill_date_levels(dim_table.model(), &mut spec);
                match dim_table.lookup_or_insert(&spec) {
                    Ok(key) => {
                        if dim_table.len() > before {
                            *created.entry(dim_table.model().name.clone()).or_insert(0) += 1;
                        }
                        keys.push(key);
                    }
                    Err(e) => {
                        report.rejected.push(Rejection {
                            row: row_idx,
                            reason: format!("role {:?}: {e}", role.role),
                        });
                        continue 'rows;
                    }
                }
            }
            match self.facts[fact_id.index()].insert(&keys, &measure_values) {
                Ok(()) => report.inserted += 1,
                Err(e) => report.rejected.push(Rejection {
                    row: row_idx,
                    reason: e.to_string(),
                }),
            }
        }

        let mut new_members: Vec<(String, usize)> = created.into_iter().collect();
        new_members.sort();
        report.new_members = new_members;
        Ok(report)
    }
}

/// Table extents captured before a mutation; see
/// [`Warehouse::delta_tracker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaTracker {
    revision: u64,
    fact_rows: Vec<usize>,
    dim_members: Vec<usize>,
}

/// A typed description of a pure-append mutation: for each fact table the
/// `(rows_before, rows_after)` extent and for each dimension table the
/// `(members_before, members_after)` extent, in schema order.
///
/// Produced by [`Warehouse::delta_since`] and consumed by
/// [`crate::MaterializedRollup::apply_delta`], which folds exactly the
/// appended rows/members into a live materialized aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarehouseDelta {
    /// Warehouse revision when the tracker was captured.
    pub base_revision: u64,
    /// Warehouse revision when the delta was taken.
    pub new_revision: u64,
    /// `(before, after)` row counts per fact table, schema order.
    pub fact_rows: Vec<(usize, usize)>,
    /// `(before, after)` member counts per dimension table, schema order.
    pub dim_members: Vec<(usize, usize)>,
}

impl WarehouseDelta {
    /// Total fact rows appended across all fact tables.
    pub fn fact_rows_added(&self) -> usize {
        self.fact_rows.iter().map(|&(b, a)| a - b).sum()
    }

    /// Total dimension members created across all dimension tables.
    pub fn members_added(&self) -> usize {
        self.dim_members.iter().map(|&(b, a)| a - b).sum()
    }

    /// True when the delta appended nothing at all.
    pub fn is_empty(&self) -> bool {
        self.fact_rows_added() == 0 && self.members_added() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etl::FactRowBuilder;
    use crate::value::Value;
    use dwqa_mdmodel::last_minute_sales;

    fn sale(dest: &str, city: &str, date: (i32, u32, u32), price: f64) -> FactRow {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(price))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(dest)),
                    ("city_name", Value::text(city)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member(
                "Date",
                &[("date", Value::date(date.0, date.1, date.2).unwrap())],
            );
        b.build()
    }

    #[test]
    fn load_creates_members_and_inserts_facts() {
        let mut wh = Warehouse::new(last_minute_sales());
        let report = wh
            .load(
                "Last Minute Sales",
                vec![
                    sale("El Prat", "Barcelona", (2004, 1, 30), 120.0),
                    sale("El Prat", "Barcelona", (2004, 1, 31), 140.0),
                    sale("JFK", "New York", (2004, 1, 31), 320.0),
                ],
            )
            .unwrap();
        assert_eq!(report.inserted, 3);
        assert!(report.rejected.is_empty());
        assert_eq!(wh.fact("Last Minute Sales").unwrap().len(), 3);
        // El Prat deduplicated; Alicante created once as origin.
        assert_eq!(wh.dimension("Airport").unwrap().len(), 3);
        assert_eq!(wh.dimension("Date").unwrap().len(), 2);
        assert_eq!(
            report.new_members,
            vec![
                ("Airport".to_owned(), 3),
                ("Customer".to_owned(), 1),
                ("Date".to_owned(), 2)
            ]
        );
    }

    #[test]
    fn bad_rows_are_rejected_individually() {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut missing_measure = FactRowBuilder::new();
        missing_measure
            .measure("price", Value::Float(1.0))
            .role_member("Origin", &[("airport_name", Value::text("A"))]);
        let batch = vec![
            sale("El Prat", "Barcelona", (2004, 1, 30), 120.0),
            missing_measure.build(),
        ];
        let report = wh.load("Last Minute Sales", batch).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].row, 1);
        assert!(report.rejected[0].reason.contains("missing measure"));
        assert_eq!(report.total(), 2);
    }

    #[test]
    fn stats_report_every_table() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let stats = wh.stats();
        assert!(stats.contains(&("fact Last Minute Sales".to_owned(), 1)));
        assert!(stats.contains(&("dimension Airport".to_owned(), 2)));
        assert!(stats.contains(&("dimension Date".to_owned(), 1)));
    }

    #[test]
    fn unknown_fact_is_an_error() {
        let mut wh = Warehouse::new(last_minute_sales());
        assert!(matches!(
            wh.load("Ghost", vec![]),
            Err(WarehouseError::UnknownFact(_))
        ));
    }

    #[test]
    fn unknown_measure_name_rejects_row() {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut row = sale("El Prat", "Barcelona", (2004, 1, 30), 120.0);
        row.measures.push(("profit".to_owned(), Value::Float(9.9)));
        let report = wh.load("Last Minute Sales", vec![row]).unwrap();
        assert_eq!(report.inserted, 0);
        assert!(report.rejected[0].reason.contains("unknown measure"));
    }

    #[test]
    fn plan_cache_reuses_until_warehouse_changes() {
        use crate::query::{AggFn, CubeQuery};
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let q = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum);
        let p1 = wh.plan(&q).unwrap();
        let p2 = wh.plan(&q).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "unchanged warehouse reuses plan");
        // A different query compiles its own plan.
        let q2 = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "Airport")
            .aggregate("price", AggFn::Sum);
        let p3 = wh.plan(&q2).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        // Loading bumps the revision and evicts stale plans.
        let rev = wh.revision();
        wh.load(
            "Last Minute Sales",
            vec![sale("JFK", "New York", (2004, 1, 31), 320.0)],
        )
        .unwrap();
        assert!(wh.revision() > rev);
        let p4 = wh.plan(&q).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p4), "stale plan recompiled after load");
        assert_eq!(p4.revision(), wh.revision());
    }

    #[test]
    fn clone_preserves_revision_with_fresh_plan_cache() {
        use crate::query::{AggFn, CubeQuery};
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let q = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum);
        let p1 = wh.plan(&q).unwrap();
        let copy = wh.clone();
        assert_eq!(copy.revision(), wh.revision());
        // The clone compiles independently but produces identical rows.
        let p2 = copy.plan(&q).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(q.run(&wh).unwrap(), q.run(&copy).unwrap());
    }

    #[test]
    fn read_only_access_keeps_the_plan_cache_warm() {
        use crate::query::{AggFn, CubeQuery};
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let q = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum);
        let p1 = wh.plan(&q).unwrap();
        let rev = wh.revision();
        // Exercise every read path: table accessors, stats, snapshot,
        // query execution, delta capture. None of these mutate, so none
        // may move the revision or evict the cached plan.
        let _ = wh.fact("Last Minute Sales").unwrap().len();
        let _ = wh.dimension("Airport").unwrap().len();
        let _ = wh.stats();
        let _ = wh.snapshot();
        let _ = q.run(&wh).unwrap();
        let tracker = wh.delta_tracker();
        assert!(wh.delta_since(&tracker).unwrap().is_empty());
        assert_eq!(wh.revision(), rev, "read-only access bumped revision");
        let p2 = wh.plan(&q).unwrap();
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "read-only access evicted the cached plan"
        );
    }

    #[test]
    fn delta_since_describes_a_pure_append() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let tracker = wh.delta_tracker();
        wh.load(
            "Last Minute Sales",
            vec![
                sale("JFK", "New York", (2004, 1, 31), 320.0),
                sale("El Prat", "Barcelona", (2004, 2, 1), 80.0),
            ],
        )
        .unwrap();
        let delta = wh.delta_since(&tracker).unwrap();
        assert_eq!(delta.fact_rows_added(), 2);
        // JFK airport + New York-side members + one new date... at least
        // something was created, and nothing shrank.
        assert!(delta.members_added() >= 2);
        assert!(!delta.is_empty());
        assert!(delta.new_revision > delta.base_revision);
        // The fact extent is (1, 3) for the single fact table.
        assert_eq!(delta.fact_rows[0], (1, 3));
    }

    #[test]
    fn delta_since_rejects_non_append_histories() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let tracker = wh.delta_tracker();
        // A wholesale replacement with a *smaller* warehouse shrinks the
        // tables: not a pure append, so no delta.
        let smaller = Warehouse::new(last_minute_sales());
        assert!(smaller.delta_since(&tracker).is_none());
    }

    #[test]
    fn date_dimension_gets_calendar_levels() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 31), 100.0)],
        )
        .unwrap();
        let date_dim = wh.dimension("Date").unwrap();
        let key = date_dim.lookup(&Value::date(2004, 1, 31).unwrap()).unwrap();
        assert_eq!(
            date_dim.level_value(key, "Month").unwrap(),
            Value::text("2004-01")
        );
        assert_eq!(date_dim.level_value(key, "Year").unwrap(), Value::Int(2004));
    }
}
