//! The warehouse: schema + materialised tables + the load path.

use crate::dimension::DimensionTable;
use crate::error::{Result, WarehouseError};
use crate::etl::{autofill_date_levels, EtlReport, FactRow, Rejection};
use crate::fact::FactTable;
use dwqa_mdmodel::Schema;
use std::collections::HashMap;

/// A data warehouse materialising one multidimensional [`Schema`].
#[derive(Debug, Clone)]
pub struct Warehouse {
    schema: Schema,
    dimensions: Vec<DimensionTable>,
    facts: Vec<FactTable>,
}

impl Warehouse {
    /// Creates an empty warehouse for the schema.
    pub fn new(schema: Schema) -> Warehouse {
        let dimensions = schema
            .dimensions()
            .iter()
            .map(DimensionTable::new)
            .collect();
        let facts = schema.facts().iter().map(FactTable::new).collect();
        Warehouse {
            schema,
            dimensions,
            facts,
        }
    }

    /// The schema this warehouse materialises.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dimension table by name.
    pub fn dimension(&self, name: &str) -> Result<&DimensionTable> {
        let (id, _) = self
            .schema
            .dimension(name)
            .ok_or_else(|| WarehouseError::UnknownDimension(name.to_owned()))?;
        Ok(&self.dimensions[id.index()])
    }

    /// The fact table by name.
    pub fn fact(&self, name: &str) -> Result<&FactTable> {
        let (id, _) = self
            .schema
            .fact(name)
            .ok_or_else(|| WarehouseError::UnknownFact(name.to_owned()))?;
        Ok(&self.facts[id.index()])
    }

    pub(crate) fn dimension_table_mut(
        &mut self,
        id: dwqa_mdmodel::DimensionId,
    ) -> &mut DimensionTable {
        &mut self.dimensions[id.index()]
    }

    pub(crate) fn fact_table_mut(&mut self, id: dwqa_mdmodel::FactId) -> &mut FactTable {
        &mut self.facts[id.index()]
    }

    pub(crate) fn dimension_table_for_role(
        &self,
        fact: &FactTable,
        role_idx: usize,
    ) -> &DimensionTable {
        let dim_id = fact.model().roles[role_idx].dimension;
        &self.dimensions[dim_id.index()]
    }

    /// A human-readable summary: facts and dimensions with their row
    /// counts (what the REPL and examples print as a health check).
    pub fn stats(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for f in self.schema.facts() {
            out.push((
                format!("fact {}", f.name),
                self.fact(&f.name).map(|t| t.len()).unwrap_or(0),
            ));
        }
        for d in self.schema.dimensions() {
            out.push((
                format!("dimension {}", d.name),
                self.dimension(&d.name).map(|t| t.len()).unwrap_or(0),
            ));
        }
        out
    }

    /// Loads a batch of rows into the named fact table.
    ///
    /// Rows are processed independently: a bad row is recorded in the
    /// report's `rejected` list and the rest of the batch continues. Member
    /// specs for date dimensions get their calendar levels auto-derived
    /// (see [`autofill_date_levels`]).
    pub fn load(&mut self, fact_name: &str, rows: Vec<FactRow>) -> Result<EtlReport> {
        let (fact_id, fact_model) = self
            .schema
            .fact(fact_name)
            .ok_or_else(|| WarehouseError::UnknownFact(fact_name.to_owned()))?;
        let fact_model = fact_model.clone();
        let mut report = EtlReport::default();
        let mut created: HashMap<String, usize> = HashMap::new();

        'rows: for (row_idx, row) in rows.into_iter().enumerate() {
            // Resolve measures in model order.
            let mut measure_values = Vec::with_capacity(fact_model.measures.len());
            for m in &fact_model.measures {
                match row.measures.iter().find(|(n, _)| n == &m.name) {
                    Some((_, v)) => measure_values.push(v.clone()),
                    None => {
                        report.rejected.push(Rejection {
                            row: row_idx,
                            reason: format!("missing measure {:?}", m.name),
                        });
                        continue 'rows;
                    }
                }
            }
            for (name, _) in &row.measures {
                if fact_model.measure(name).is_none() {
                    report.rejected.push(Rejection {
                        row: row_idx,
                        reason: format!("unknown measure {:?}", name),
                    });
                    continue 'rows;
                }
            }
            // Resolve role members in model order, creating members lazily.
            // Keys are resolved into a staging vec first; dimension inserts
            // are idempotent, so earlier member creation is harmless even
            // if a later role of the same row fails.
            let mut keys = Vec::with_capacity(fact_model.roles.len());
            for role in &fact_model.roles {
                let Some((_, spec)) = row.roles.iter().find(|(r, _)| r == &role.role) else {
                    report.rejected.push(Rejection {
                        row: row_idx,
                        reason: format!("missing role {:?}", role.role),
                    });
                    continue 'rows;
                };
                let dim_table = &mut self.dimensions[role.dimension.index()];
                let before = dim_table.len();
                let mut spec = spec.clone();
                autofill_date_levels(dim_table.model(), &mut spec);
                match dim_table.lookup_or_insert(&spec) {
                    Ok(key) => {
                        if dim_table.len() > before {
                            *created.entry(dim_table.model().name.clone()).or_insert(0) += 1;
                        }
                        keys.push(key);
                    }
                    Err(e) => {
                        report.rejected.push(Rejection {
                            row: row_idx,
                            reason: format!("role {:?}: {e}", role.role),
                        });
                        continue 'rows;
                    }
                }
            }
            match self.facts[fact_id.index()].insert(&keys, &measure_values) {
                Ok(()) => report.inserted += 1,
                Err(e) => report.rejected.push(Rejection {
                    row: row_idx,
                    reason: e.to_string(),
                }),
            }
        }

        let mut new_members: Vec<(String, usize)> = created.into_iter().collect();
        new_members.sort();
        report.new_members = new_members;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etl::FactRowBuilder;
    use crate::value::Value;
    use dwqa_mdmodel::last_minute_sales;

    fn sale(dest: &str, city: &str, date: (i32, u32, u32), price: f64) -> FactRow {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(price))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(dest)),
                    ("city_name", Value::text(city)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member(
                "Date",
                &[("date", Value::date(date.0, date.1, date.2).unwrap())],
            );
        b.build()
    }

    #[test]
    fn load_creates_members_and_inserts_facts() {
        let mut wh = Warehouse::new(last_minute_sales());
        let report = wh
            .load(
                "Last Minute Sales",
                vec![
                    sale("El Prat", "Barcelona", (2004, 1, 30), 120.0),
                    sale("El Prat", "Barcelona", (2004, 1, 31), 140.0),
                    sale("JFK", "New York", (2004, 1, 31), 320.0),
                ],
            )
            .unwrap();
        assert_eq!(report.inserted, 3);
        assert!(report.rejected.is_empty());
        assert_eq!(wh.fact("Last Minute Sales").unwrap().len(), 3);
        // El Prat deduplicated; Alicante created once as origin.
        assert_eq!(wh.dimension("Airport").unwrap().len(), 3);
        assert_eq!(wh.dimension("Date").unwrap().len(), 2);
        assert_eq!(
            report.new_members,
            vec![
                ("Airport".to_owned(), 3),
                ("Customer".to_owned(), 1),
                ("Date".to_owned(), 2)
            ]
        );
    }

    #[test]
    fn bad_rows_are_rejected_individually() {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut missing_measure = FactRowBuilder::new();
        missing_measure
            .measure("price", Value::Float(1.0))
            .role_member("Origin", &[("airport_name", Value::text("A"))]);
        let batch = vec![
            sale("El Prat", "Barcelona", (2004, 1, 30), 120.0),
            missing_measure.build(),
        ];
        let report = wh.load("Last Minute Sales", batch).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].row, 1);
        assert!(report.rejected[0].reason.contains("missing measure"));
        assert_eq!(report.total(), 2);
    }

    #[test]
    fn stats_report_every_table() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 30), 120.0)],
        )
        .unwrap();
        let stats = wh.stats();
        assert!(stats.contains(&("fact Last Minute Sales".to_owned(), 1)));
        assert!(stats.contains(&("dimension Airport".to_owned(), 2)));
        assert!(stats.contains(&("dimension Date".to_owned(), 1)));
    }

    #[test]
    fn unknown_fact_is_an_error() {
        let mut wh = Warehouse::new(last_minute_sales());
        assert!(matches!(
            wh.load("Ghost", vec![]),
            Err(WarehouseError::UnknownFact(_))
        ));
    }

    #[test]
    fn unknown_measure_name_rejects_row() {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut row = sale("El Prat", "Barcelona", (2004, 1, 30), 120.0);
        row.measures.push(("profit".to_owned(), Value::Float(9.9)));
        let report = wh.load("Last Minute Sales", vec![row]).unwrap();
        assert_eq!(report.inserted, 0);
        assert!(report.rejected[0].reason.contains("unknown measure"));
    }

    #[test]
    fn date_dimension_gets_calendar_levels() {
        let mut wh = Warehouse::new(last_minute_sales());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", (2004, 1, 31), 100.0)],
        )
        .unwrap();
        let date_dim = wh.dimension("Date").unwrap();
        let key = date_dim.lookup(&Value::date(2004, 1, 31).unwrap()).unwrap();
        assert_eq!(
            date_dim.level_value(key, "Month").unwrap(),
            Value::text("2004-01")
        );
        assert_eq!(date_dim.level_value(key, "Year").unwrap(), Value::Int(2004));
    }
}
