//! Differential proptest: the compiled columnar executor must be
//! byte-identical to the row-at-a-time reference executor — same rows,
//! same ordering, same column names, and the same error on invalid
//! queries — for arbitrary corpora and arbitrary query shapes.
//!
//! The corpus and query decoders live in [`dwqa_warehouse::testing`] and
//! are shared with the incremental-maintenance suite and the experiment
//! binaries; each case is seeded from raw `u64`s, and a failing case
//! prints the seeds, which reproduce deterministically.

use dwqa_warehouse::testing::{airport_spec, build_query, build_warehouse};
use dwqa_warehouse::{
    AggFn, CubeQuery, FactRowBuilder, Predicate, ResultSet, Value, Warehouse, WarehouseError,
};
use proptest::prelude::*;

/// Both executors must agree exactly — on success, the same `ResultSet`
/// (columns, rows, ordering); on failure, the same error.
fn assert_parity(wh: &Warehouse, q: &CubeQuery) {
    let reference: Result<ResultSet, WarehouseError> = q.execute_reference(wh);
    let compiled = q.run(wh);
    match (&reference, &compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "result mismatch for {q:?}"),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "error mismatch for {q:?}"
        ),
        _ => {
            panic!("executor disagreement for {q:?}: reference={reference:?} compiled={compiled:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_compiled_executor_matches_reference(
        row_seeds in proptest::collection::vec(any::<u64>(), 0..60),
        query_seed in any::<u64>(),
    ) {
        let wh = build_warehouse(&row_seeds);
        let q = build_query(query_seed);
        assert_parity(&wh, &q);
    }

    /// The same queries against a completely empty warehouse: the
    /// zero-group fast path must agree on the "no rows at all" edge
    /// (global aggregates produce *no* row, not a row of nulls).
    #[test]
    fn prop_parity_on_empty_fact_table(query_seed in any::<u64>()) {
        let wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
        let q = build_query(query_seed);
        assert_parity(&wh, &q);
    }

    /// Repeated runs of one query against one warehouse hit the plan
    /// cache; cached plans must not drift from fresh compiles.
    #[test]
    fn prop_plan_cache_is_transparent(
        row_seeds in proptest::collection::vec(any::<u64>(), 1..30),
        query_seed in any::<u64>(),
    ) {
        let wh = build_warehouse(&row_seeds);
        let q = build_query(query_seed);
        let first = q.run(&wh);
        let second = q.run(&wh);
        match (&first, &second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert!(false, "cached run diverged: {:?} vs {:?}", first, second),
        }
    }
}

/// Four group-by coordinates over 40-member pools push the composed
/// ordinal space past the dense limit (40 airports² × 40 customers ×
/// 27 dates ≈ 1.7M > 2²⁰), forcing the sparse (hashed-ordinal) path —
/// which must still match the reference exactly.
#[test]
fn sparse_path_matches_reference() {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let batch: Vec<_> = (0..200usize)
        .map(|i| {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float((i * 7 % 450) as f64))
                .measure("miles", Value::Float((i * 13 % 2000) as f64))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &airport_spec(i % 40))
                .role_member("Destination", &airport_spec((i * 3 + 1) % 40))
                .role_member(
                    "Customer",
                    &[("customer_name", Value::text(format!("C{}", i % 40)))],
                )
                .role_member(
                    "Date",
                    &[("date", Value::date(2004, 1, (i % 27 + 1) as u32).unwrap())],
                );
            b.build()
        })
        .collect();
    wh.load("Last Minute Sales", batch).unwrap();
    let q = CubeQuery::on("Last Minute Sales")
        .group_by("Origin", "Airport")
        .group_by("Destination", "Airport")
        .group_by("Customer", "Customer")
        .group_by("Date", "Date")
        .aggregate("price", AggFn::Sum)
        .aggregate("miles", AggFn::Avg)
        .order_by("sum(price)", true);
    let reference = q.execute_reference(&wh).unwrap();
    let compiled = q.run(&wh).unwrap();
    assert_eq!(reference, compiled);
    assert_eq!(reference.rows.len(), 200); // every fact row its own group
}

/// Duplicate filters on the same role AND-merge in the compiled plan;
/// the reference evaluates them sequentially. Both must agree,
/// including when the conjunction is unsatisfiable.
#[test]
fn stacked_filters_on_one_role_and_merge() {
    let wh = build_warehouse(&(0..30).map(|i| i * 0x9E37 + 11).collect::<Vec<u64>>());
    let q = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "Country",
            Predicate::Eq(Value::text("Spain")),
        )
        .filter(
            "Destination",
            "City",
            Predicate::Eq(Value::text("Barcelona")),
        )
        .group_by("Destination", "Airport")
        .aggregate("price", AggFn::Count);
    assert_eq!(q.execute_reference(&wh).unwrap(), q.run(&wh).unwrap());

    let impossible = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "City",
            Predicate::Eq(Value::text("Barcelona")),
        )
        .filter("Destination", "City", Predicate::Eq(Value::text("Madrid")))
        .aggregate("price", AggFn::Count);
    let reference = impossible.execute_reference(&wh).unwrap();
    let compiled = impossible.run(&wh).unwrap();
    assert_eq!(reference, compiled);
    assert!(reference.rows.is_empty());
}
