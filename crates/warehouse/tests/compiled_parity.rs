//! Differential proptest: the compiled columnar executor must be
//! byte-identical to the row-at-a-time reference executor — same rows,
//! same ordering, same column names, and the same error on invalid
//! queries — for arbitrary corpora and arbitrary query shapes.
//!
//! The vendored proptest stand-in only offers primitive strategies, so
//! each case is seeded from raw `u64`s and decoded into a corpus and a
//! query spec with a splitmix64 stream; a failing case prints the seeds,
//! which reproduce deterministically.

use dwqa_warehouse::{
    AggFn, CubeQuery, FactRowBuilder, Predicate, ResultSet, Value, Warehouse, WarehouseError,
};
use proptest::prelude::*;

const CITIES: [&str; 5] = ["Barcelona", "Madrid", "Paris", "Rome", "Berlin"];
const COUNTRIES: [&str; 3] = ["Spain", "France", "Italy"];
const MEASURES: [&str; 3] = ["price", "miles", "traveler_rate"];
const FNS: [AggFn; 5] = [AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max, AggFn::Count];

/// Group-by coordinates the decoder draws from; every hierarchy depth
/// appears so roll-up merging is exercised.
const COORDS: [(&str, &str); 8] = [
    ("Destination", "Airport"),
    ("Destination", "City"),
    ("Destination", "Country"),
    ("Origin", "City"),
    ("Customer", "Customer"),
    ("Date", "Date"),
    ("Date", "Month"),
    ("Date", "Year"),
];

/// Deterministic word stream for decoding seeds into structure.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

fn airport_spec(idx: usize) -> Vec<(&'static str, Value)> {
    let city = CITIES[idx % CITIES.len()];
    let country = COUNTRIES[idx % COUNTRIES.len()];
    let mut spec = vec![
        ("airport_name", Value::text(format!("AP{idx}"))),
        ("city_name", Value::text(city)),
        ("country_name", Value::text(country)),
    ];
    // Some cities carry a population attribute, some stay Null — the
    // attribute-filter paths must agree on both.
    if idx % 3 != 0 {
        spec.push(("population", Value::Int(500_000 * (idx as i64 + 1))));
    }
    spec
}

/// One synthetic sale decoded from a seed word.
fn build_warehouse(row_seeds: &[u64]) -> Warehouse {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let batch: Vec<_> = row_seeds
        .iter()
        .map(|&seed| {
            let mut m = Mix(seed);
            let origin = m.below(10) as usize;
            let dest = m.below(10) as usize;
            let customer = m.below(4);
            let day = m.below(27) as u32 + 1;
            let price = if m.chance(8) {
                Value::Null
            } else {
                Value::Float(m.below(50_000) as f64 / 100.0)
            };
            let miles = m.below(200_000) as f64 / 100.0;
            let rate = m.below(1_000) as f64 / 1_000.0;
            let mut b = FactRowBuilder::new();
            b.measure("price", price)
                .measure("miles", Value::Float(miles))
                .measure("traveler_rate", Value::Float(rate))
                .role_member("Origin", &airport_spec(origin))
                .role_member("Destination", &airport_spec(dest))
                .role_member(
                    "Customer",
                    &[("customer_name", Value::text(format!("C{customer}")))],
                )
                .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
            b.build()
        })
        .collect();
    let report = wh.load("Last Minute Sales", batch).unwrap();
    assert!(report.rejected.is_empty());
    wh
}

/// Decodes a query spec: group-bys, aggregates (including combinations
/// that must fail additivity checks), level / attribute / date filters,
/// order-by (sometimes on an unknown column), and a limit.
fn build_query(seed: u64) -> CubeQuery {
    let mut m = Mix(seed);
    let mut q = CubeQuery::on("Last Minute Sales");

    // Filters first, as a caller would build them.
    if m.chance(2) {
        let p = match m.below(3) {
            0 => Predicate::Eq(Value::text(CITIES[m.below(5) as usize])),
            1 => {
                let n = m.below(3) as usize;
                Predicate::In(
                    (0..n)
                        .map(|_| Value::text(CITIES[m.below(5) as usize]))
                        .collect(),
                )
            }
            _ => {
                let a = m.below(5) as usize;
                let b = m.below(5) as usize;
                Predicate::Between(Value::text(CITIES[a.min(b)]), Value::text(CITIES[a.max(b)]))
            }
        };
        q = q.filter("Destination", "City", p);
    }
    if m.chance(3) {
        let a = m.below(6_000_000) as i64;
        let b = m.below(6_000_000) as i64;
        q = q.filter_attribute(
            "Destination",
            "population",
            Predicate::Between(Value::Int(a.min(b)), Value::Int(a.max(b))),
        );
    }
    if m.chance(3) {
        let a = m.below(27) as u32 + 1;
        let b = m.below(27) as u32 + 1;
        q = q.filter(
            "Date",
            "Date",
            Predicate::Between(
                Value::date(2004, 1, a.min(b)).unwrap(),
                Value::date(2004, 1, b.max(a)).unwrap(),
            ),
        );
    }
    // Occasionally an invalid level: error parity.
    if m.chance(16) {
        q = q.filter("Origin", "Galaxy", Predicate::Eq(Value::text("x")));
    }

    let mut columns: Vec<String> = Vec::new();
    let n_groups = m.below(4) as usize; // 0..=3 coordinates
    for _ in 0..n_groups {
        let (role, level) = COORDS[m.below(COORDS.len() as u64) as usize];
        q = q.group_by(role, level);
        columns.push(format!("{role}.{level}"));
    }
    let n_aggs = m.below(2) as usize + 1; // 1..=2 aggregates
    for _ in 0..n_aggs {
        let measure = MEASURES[m.below(3) as usize];
        let f = FNS[m.below(5) as usize];
        q = q.aggregate(measure, f);
        columns.push(format!("{}({measure})", f.label()));
    }

    if m.chance(16) {
        q = q.order_by("no_such_column", false);
    } else if m.chance(2) {
        let idx = m.below(columns.len() as u64) as usize;
        q = q.order_by(&columns[idx], m.chance(2));
    }
    if m.chance(3) {
        q = q.limit(m.below(6) as usize);
    }
    q
}

/// Both executors must agree exactly — on success, the same `ResultSet`
/// (columns, rows, ordering); on failure, the same error.
fn assert_parity(wh: &Warehouse, q: &CubeQuery) {
    let reference: Result<ResultSet, WarehouseError> = q.execute_reference(wh);
    let compiled = q.run(wh);
    match (&reference, &compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "result mismatch for {q:?}"),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "error mismatch for {q:?}"
        ),
        _ => {
            panic!("executor disagreement for {q:?}: reference={reference:?} compiled={compiled:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_compiled_executor_matches_reference(
        row_seeds in proptest::collection::vec(any::<u64>(), 0..60),
        query_seed in any::<u64>(),
    ) {
        let wh = build_warehouse(&row_seeds);
        let q = build_query(query_seed);
        assert_parity(&wh, &q);
    }

    /// The same queries against a completely empty warehouse: the
    /// zero-group fast path must agree on the "no rows at all" edge
    /// (global aggregates produce *no* row, not a row of nulls).
    #[test]
    fn prop_parity_on_empty_fact_table(query_seed in any::<u64>()) {
        let wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
        let q = build_query(query_seed);
        assert_parity(&wh, &q);
    }

    /// Repeated runs of one query against one warehouse hit the plan
    /// cache; cached plans must not drift from fresh compiles.
    #[test]
    fn prop_plan_cache_is_transparent(
        row_seeds in proptest::collection::vec(any::<u64>(), 1..30),
        query_seed in any::<u64>(),
    ) {
        let wh = build_warehouse(&row_seeds);
        let q = build_query(query_seed);
        let first = q.run(&wh);
        let second = q.run(&wh);
        match (&first, &second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert!(false, "cached run diverged: {:?} vs {:?}", first, second),
        }
    }
}

/// Four group-by coordinates over 40-member pools push the composed
/// ordinal space past the dense limit (40 airports² × 40 customers ×
/// 27 dates ≈ 1.7M > 2²⁰), forcing the sparse (hashed-ordinal) path —
/// which must still match the reference exactly.
#[test]
fn sparse_path_matches_reference() {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let batch: Vec<_> = (0..200usize)
        .map(|i| {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float((i * 7 % 450) as f64))
                .measure("miles", Value::Float((i * 13 % 2000) as f64))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &airport_spec(i % 40))
                .role_member("Destination", &airport_spec((i * 3 + 1) % 40))
                .role_member(
                    "Customer",
                    &[("customer_name", Value::text(format!("C{}", i % 40)))],
                )
                .role_member(
                    "Date",
                    &[("date", Value::date(2004, 1, (i % 27 + 1) as u32).unwrap())],
                );
            b.build()
        })
        .collect();
    wh.load("Last Minute Sales", batch).unwrap();
    let q = CubeQuery::on("Last Minute Sales")
        .group_by("Origin", "Airport")
        .group_by("Destination", "Airport")
        .group_by("Customer", "Customer")
        .group_by("Date", "Date")
        .aggregate("price", AggFn::Sum)
        .aggregate("miles", AggFn::Avg)
        .order_by("sum(price)", true);
    let reference = q.execute_reference(&wh).unwrap();
    let compiled = q.run(&wh).unwrap();
    assert_eq!(reference, compiled);
    assert_eq!(reference.rows.len(), 200); // every fact row its own group
}

/// Duplicate filters on the same role AND-merge in the compiled plan;
/// the reference evaluates them sequentially. Both must agree,
/// including when the conjunction is unsatisfiable.
#[test]
fn stacked_filters_on_one_role_and_merge() {
    let wh = build_warehouse(&(0..30).map(|i| i * 0x9E37 + 11).collect::<Vec<u64>>());
    let q = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "Country",
            Predicate::Eq(Value::text("Spain")),
        )
        .filter(
            "Destination",
            "City",
            Predicate::Eq(Value::text("Barcelona")),
        )
        .group_by("Destination", "Airport")
        .aggregate("price", AggFn::Count);
    assert_eq!(q.execute_reference(&wh).unwrap(), q.run(&wh).unwrap());

    let impossible = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "City",
            Predicate::Eq(Value::text("Barcelona")),
        )
        .filter("Destination", "City", Predicate::Eq(Value::text("Madrid")))
        .aggregate("price", AggFn::Count);
    let reference = impossible.execute_reference(&wh).unwrap();
    let compiled = impossible.run(&wh).unwrap();
    assert_eq!(reference, compiled);
    assert!(reference.rows.is_empty());
}
