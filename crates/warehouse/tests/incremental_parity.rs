//! Differential proptest for incremental roll-up maintenance: a
//! [`MaterializedRollup`] that absorbs typed [`WarehouseDelta`]s across
//! arbitrary interleavings of feed-commit / rollback / crash-recovery /
//! query must stay **byte-identical** to a cold
//! [`CubeQuery::execute_reference`] recompute — including forced-demotion
//! interleavings (a tiny group limit) and recovery interleavings (the
//! warehouse replaced by a snapshot replay of identical content).
//!
//! The corpus and query decoders are shared with `compiled_parity.rs`
//! via [`dwqa_warehouse::testing`]; each case is seeded from raw `u64`s
//! and reproduces deterministically.

use dwqa_warehouse::testing::{build_query, build_warehouse, sales_batch, Mix};
use dwqa_warehouse::{
    AggFn, CubeQuery, MaterializedRollup, Predicate, Value, Warehouse,
    DEFAULT_MATERIALIZED_GROUP_LIMIT,
};
use proptest::prelude::*;

/// Runs one decoded interleaving: maintains a materialized roll-up per
/// query across commits, rollbacks and crash-recoveries, asserting at
/// every query op that the maintained result equals a cold reference
/// recompute exactly. `group_limit` tightens the demotion threshold so
/// small limits force the demote-and-rebuild path.
fn check_interleaving(init_seed: u64, op_seed: u64, query_seeds: &[u64], group_limit: usize) {
    let mut m = Mix(init_seed);
    let init_rows: Vec<u64> = (0..m.below(40)).map(|_| m.word()).collect();
    let mut wh = build_warehouse(&init_rows);
    let queries: Vec<CubeQuery> = query_seeds.iter().map(|&s| build_query(s)).collect();
    // One live entry per query; None = not (or no longer) materialized,
    // recompute on next read — demotion is always an option, never a
    // correctness risk.
    let mut mats: Vec<Option<MaterializedRollup>> = vec![None; queries.len()];

    let mut ops = Mix(op_seed);
    let n_ops = ops.below(10) + 2;
    for op in 0..=n_ops {
        // Every interleaving ends on a query op so maintained state is
        // always checked at least once.
        let kind = if op == n_ops { 3 } else { ops.below(4) };
        match kind {
            0 => {
                // Commit: capture a tracker, append a small batch, fold
                // the resulting delta into every live entry.
                let tracker = wh.delta_tracker();
                let batch_seeds: Vec<u64> = (0..ops.below(5) + 1).map(|_| ops.word()).collect();
                wh.load("Last Minute Sales", sales_batch(&batch_seeds))
                    .unwrap();
                let delta = wh.delta_since(&tracker).expect("load is a pure append");
                for slot in &mut mats {
                    if let Some(mat) = slot {
                        if !mat.apply_delta(&wh, &delta) {
                            *slot = None; // demote: rebuilt on next query
                        }
                    }
                }
            }
            1 => {
                // Rollback: a batch is loaded, then the transaction is
                // abandoned by restoring the pre-load snapshot. The
                // delta is discarded; live state must stay valid
                // because the restored content matches what was folded.
                let before = wh.snapshot();
                let batch_seeds: Vec<u64> = (0..ops.below(5) + 1).map(|_| ops.word()).collect();
                wh.load("Last Minute Sales", sales_batch(&batch_seeds))
                    .unwrap();
                wh = Warehouse::restore(&before).unwrap();
            }
            2 => {
                // Crash + recovery: the process loses the in-memory
                // warehouse and replays a snapshot to identical content
                // (what WAL recovery converges to). Maintained entries
                // key on content extents, not object identity, so they
                // must survive and keep absorbing later deltas.
                wh = Warehouse::restore(&wh.snapshot()).unwrap();
            }
            _ => {
                // Query: the maintained result must be byte-identical
                // to a cold reference recompute, and invalid queries
                // must report the identical error from either path.
                for (q, slot) in queries.iter().zip(&mut mats) {
                    let expected = q.execute_reference(&wh);
                    if slot.is_none() {
                        match (MaterializedRollup::build(q, &wh, group_limit), &expected) {
                            (Ok(opt), Ok(_)) => *slot = opt,
                            (Err(got), Err(want)) => {
                                assert_eq!(
                                    format!("{got:?}"),
                                    format!("{want:?}"),
                                    "error mismatch for {q:?}"
                                );
                                continue;
                            }
                            (got, want) => panic!(
                                "build/reference disagreement for {q:?}: \
                                 build={got:?} reference={want:?}"
                            ),
                        }
                    }
                    if let Some(mat) = slot {
                        let expected = expected.expect("materialized query is valid");
                        assert_eq!(
                            mat.result_set(),
                            &expected,
                            "incremental result diverged from cold recompute for {q:?} \
                             after {op} ops"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline invariant: arbitrary commit/rollback/recovery/query
    /// interleavings, incremental == cold recompute, byte for byte.
    #[test]
    fn prop_incremental_matches_cold_recompute(
        init_seed in any::<u64>(),
        op_seed in any::<u64>(),
        query_seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        check_interleaving(init_seed, op_seed, &query_seeds, DEFAULT_MATERIALIZED_GROUP_LIMIT);
    }

    /// The same interleavings under a group limit so tight that most
    /// grouped queries demote mid-stream: the demote-and-rebuild path
    /// must be just as exact as the absorb path.
    #[test]
    fn prop_forced_demotion_stays_exact(
        init_seed in any::<u64>(),
        op_seed in any::<u64>(),
        query_seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        check_interleaving(init_seed, op_seed, &query_seeds, 2);
    }
}

/// A commit that introduces brand-new dimension members — a new airport,
/// a new city value for the grouped level, a new date — must extend the
/// pass masks and key→ordinal maps rather than demote.
#[test]
fn new_members_extend_masks_and_ordinal_maps() {
    let mut wh = build_warehouse(&[1, 2, 3, 4, 5]);
    let q = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "Country",
            Predicate::In(vec![Value::text("Spain"), Value::text("France")]),
        )
        .group_by("Destination", "City")
        .group_by("Date", "Month")
        .aggregate("price", AggFn::Sum)
        .aggregate("price", AggFn::Count);
    let mut mat = MaterializedRollup::build(&q, &wh, DEFAULT_MATERIALIZED_GROUP_LIMIT)
        .unwrap()
        .expect("materializable");
    assert_eq!(mat.result_set(), &q.execute_reference(&wh).unwrap());

    // Seeds decode to airports 0..10; a fresh batch with high seeds
    // reaches different airports/customers/dates, creating members the
    // masks and maps have never seen.
    let tracker = wh.delta_tracker();
    let batch = sales_batch(&[0xDEAD_BEEF, 0xFEED_F00D, 0x0BAD_CAFE]);
    wh.load("Last Minute Sales", batch).unwrap();
    let delta = wh.delta_since(&tracker).unwrap();
    assert!(delta.fact_rows_added() == 3);
    assert!(
        mat.apply_delta(&wh, &delta),
        "pure-append delta with new members must be absorbable"
    );
    assert_eq!(mat.result_set(), &q.execute_reference(&wh).unwrap());
    assert_eq!(mat.rows_folded(), 8);
}

/// When the folded group table outgrows the limit, `apply_delta` refuses
/// — the entry must be demoted, not trusted.
#[test]
fn group_growth_past_the_limit_demotes() {
    let mut wh = build_warehouse(&[10, 20]);
    let q = CubeQuery::on("Last Minute Sales")
        .group_by("Date", "Date")
        .aggregate("price", AggFn::Count);
    // Limit chosen to accept the build but not much growth.
    let groups_now = q.execute_reference(&wh).unwrap().rows.len();
    let mut mat = MaterializedRollup::build(&q, &wh, groups_now)
        .unwrap()
        .expect("fits exactly at the limit");

    // Keep committing until a batch introduces enough new dates to
    // overflow the limit; the fold must then report unabsorbable.
    let mut demoted = false;
    let mut m = Mix(0xA11CE5);
    for _ in 0..20 {
        let tracker = wh.delta_tracker();
        let seeds: Vec<u64> = (0..4).map(|_| m.word()).collect();
        wh.load("Last Minute Sales", sales_batch(&seeds)).unwrap();
        let delta = wh.delta_since(&tracker).unwrap();
        if !mat.apply_delta(&wh, &delta) {
            demoted = true;
            break;
        }
        assert_eq!(mat.result_set(), &q.execute_reference(&wh).unwrap());
    }
    assert!(demoted, "27 possible dates > initial groups; must demote");
    // A rebuild at the default limit picks the query back up exactly.
    let rebuilt = MaterializedRollup::build(&q, &wh, DEFAULT_MATERIALIZED_GROUP_LIMIT)
        .unwrap()
        .expect("materializable at the default limit");
    assert_eq!(rebuilt.result_set(), &q.execute_reference(&wh).unwrap());
}

/// A delta whose before-extent doesn't line up with the folded state
/// (e.g. replayed twice, or captured against a different warehouse) is
/// rejected rather than folded into a wrong answer.
#[test]
fn misaligned_deltas_are_rejected() {
    let mut wh = build_warehouse(&[7, 8, 9]);
    let q = CubeQuery::on("Last Minute Sales")
        .group_by("Destination", "Country")
        .aggregate("miles", AggFn::Sum);
    let mut mat = MaterializedRollup::build(&q, &wh, DEFAULT_MATERIALIZED_GROUP_LIMIT)
        .unwrap()
        .expect("materializable");

    let tracker = wh.delta_tracker();
    wh.load("Last Minute Sales", sales_batch(&[100])).unwrap();
    let delta = wh.delta_since(&tracker).unwrap();
    assert!(mat.apply_delta(&wh, &delta));
    // Replaying the same delta again: before-extent (3) no longer
    // matches rows_folded (4).
    assert!(
        !mat.apply_delta(&wh, &delta),
        "double-apply must be refused"
    );
}

/// More than four group-by coordinates cannot be lane-packed; `build`
/// declines (`Ok(None)`) instead of materializing something it could
/// not maintain.
#[test]
fn five_coordinates_are_not_materializable() {
    let wh = build_warehouse(&[1, 2, 3]);
    let q = CubeQuery::on("Last Minute Sales")
        .group_by("Origin", "Airport")
        .group_by("Destination", "Airport")
        .group_by("Customer", "Customer")
        .group_by("Date", "Date")
        .group_by("Date", "Month")
        .aggregate("price", AggFn::Count);
    assert!(
        MaterializedRollup::build(&q, &wh, DEFAULT_MATERIALIZED_GROUP_LIMIT)
            .unwrap()
            .is_none()
    );
    // The query itself still runs fine through the per-read paths.
    assert_eq!(q.run(&wh).unwrap(), q.execute_reference(&wh).unwrap());
}
