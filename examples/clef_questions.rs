//! AliQAn beyond the weather domain: the 20-class answer-type taxonomy on
//! CLEF-style questions over a small mixed corpus — including the paper's
//! own CLEF examples ("Which country did Iraq invade in 1990?", "What is
//! the brightest star visible in the universe?").
//!
//! Run with: `cargo run -p dwqa-core --example clef_questions`

use dwqa_ir::{DocFormat, Document, DocumentStore};
use dwqa_ontology::upper_ontology;
use dwqa_qa::{AliQAn, AliQAnConfig};

fn main() {
    let mut store = DocumentStore::new();
    let pages: &[(&str, &str)] = &[
        (
            "history/gulf-war",
            "Iraq invaded Kuwait in 1990. The invasion started the Gulf War. \
             Many countries joined the coalition against Iraq.",
        ),
        (
            "astronomy/sirius",
            "All stars shine but none do it like Sirius, the brightest star in the night sky. \
             Sirius is visible from almost everywhere on Earth.",
        ),
        (
            "history/la-guardia",
            "Fiorello La Guardia was the mayor of New York. He reformed the city government.",
        ),
        (
            "travel/promo",
            "Last minute flights to Barcelona cost 49 euros this January. \
             Sales rose 12 % compared to December.",
        ),
        (
            "history/jfk",
            "President John F. Kennedy was assassinated in 1963 in Dallas.",
        ),
    ];
    for (path, text) in pages {
        store.add(Document::new(
            &format!("http://corpus.example.org/{path}"),
            DocFormat::Plain,
            path,
            text,
        ));
    }

    let mut qa = AliQAn::new(upper_ontology(), AliQAnConfig::default());
    qa.index_corpus(store);

    let questions = [
        "Which country did Iraq invade in 1990?",
        "What is the brightest star visible in the universe?",
        "Who was the mayor of New York?",
        "Which year was President Kennedy assassinated?",
        "What is the price of a last minute flight to Barcelona?",
        "When did Iraq invade Kuwait?",
    ];
    for question in questions {
        let analysis = qa.analyze(question);
        println!("Q: {question}");
        println!(
            "   pattern = {} → expected answer type = {} ({})",
            analysis.pattern_name,
            analysis.answer_type,
            analysis.answer_type.expectation()
        );
        println!(
            "   main SBs: {}",
            analysis
                .main_sbs
                .iter()
                .map(|s| format!("[{}]", s.text))
                .collect::<Vec<_>>()
                .join(" ")
        );
        match qa.answer(question).first() {
            Some(answer) => println!(
                "   A: {}  (score {:.2}, from {})\n",
                answer.value, answer.score, answer.url
            ),
            None => println!("   A: no answer found\n"),
        }
    }
}
