//! Domain-genericity check: the paper's *other* fact example ("treatments
//! of patients") through Steps 1–4 — nothing in the pipeline is wired to
//! the airline domain.
//!
//! A hospital DW (patients × treatments × dates) is transformed into a
//! domain ontology, enriched with its members, merged into the same
//! mini-WordNet, and a QA system over medical intranet reports answers
//! cost and person questions against it.
//!
//! Run with: `cargo run -p dwqa-core --example hospital_scenario`

use dwqa_ir::{DocFormat, Document, DocumentStore};
use dwqa_mdmodel::patient_treatments;
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, schema_to_ontology, upper_ontology, MatchKind,
    MergeOptions,
};
use dwqa_qa::{AliQAn, AliQAnConfig};
use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

fn main() {
    // The hospital DW with a few treatments.
    let mut wh = Warehouse::new(patient_treatments());
    for (patient, treatment, specialty, cost, day) in [
        ("Maria Lopez", "knee surgery", "orthopedics", 4200.0, 5u32),
        ("John Smith", "physical therapy", "rehabilitation", 350.0, 9),
        (
            "Ana Garcia",
            "cataract surgery",
            "ophthalmology",
            2100.0,
            17,
        ),
    ] {
        let mut b = FactRowBuilder::new();
        b.measure("cost", Value::Float(cost))
            .measure("duration_days", Value::Int(3))
            .role_member("Patient", &[("patient_name", Value::text(patient))])
            .role_member(
                "Treatment",
                &[
                    ("treatment_name", Value::text(treatment)),
                    ("specialty_name", Value::text(specialty)),
                ],
            )
            .role_member("Date", &[("date", Value::date(2004, 3, day).unwrap())]);
        wh.load("Treatments", vec![b.build()]).unwrap();
    }

    // Steps 1–3, exactly as for the airline.
    let mut domain = schema_to_ontology(wh.schema());
    let enrichment = enrich_from_warehouse(&mut domain, &wh);
    let mut upper = upper_ontology();
    let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
    println!(
        "Steps 1-3: {} instances enriched; merge: {} exact, {} head-word, {} new-root",
        enrichment.instances_added,
        report.count(MatchKind::Exact),
        report.count(MatchKind::HeadWord),
        report.count(MatchKind::NewRoot),
    );
    for (label, kind) in &report.class_matches {
        println!("  {kind:?} ← {label}");
    }
    // "Treatments" lands under the medical treatment synset;
    // "knee surgery" became an instance of it via the DW.
    let treatment = upper.class_for("treatment").unwrap();
    assert!(upper
        .concepts_for("knee surgery")
        .iter()
        .any(|&id| upper.is_a(id, treatment)));

    // A medical intranet corpus.
    let mut store = DocumentStore::new();
    store.add(Document::new(
        "intranet://reports/orthopedics-march",
        DocFormat::Plain,
        "orthopedics report",
        "Orthopedics monthly report.\n\
         The knee surgery for Maria Lopez on March 5, 2004 cost 4200 euros.\n\
         Doctor Ramirez performed the knee surgery.\n\
         The patient will need physical therapy afterwards.",
    ));
    store.add(Document::new(
        "intranet://reports/ophthalmology-march",
        DocFormat::Plain,
        "ophthalmology report",
        "Ophthalmology monthly report.\n\
         The cataract surgery for Ana Garcia on March 17, 2004 cost 2100 euros.",
    ));

    let mut qa = AliQAn::new(upper, AliQAnConfig::default());
    qa.index_corpus(store);

    for question in [
        "What is the price of the knee surgery?",
        "Who performed the knee surgery?",
        "When did Ana Garcia have the cataract surgery?",
    ] {
        let analysis = qa.analyze(question);
        println!(
            "\nQ: {question}\n   type = {} ({})",
            analysis.answer_type,
            analysis.answer_type.expectation()
        );
        match qa.answer(question).first() {
            Some(a) => println!("   A: {}  (from {})", a.value, a.url),
            None => println!("   A: no answer found"),
        }
    }
}
