//! The paper's full **Last Minute Sales** scenario, end to end:
//! the Figure-1 schema, the generated airline + web world, the Table-1
//! trace, Step-5 feeding for every city, and the closing BI analysis.
//!
//! Run with: `cargo run -p dwqa-core --example last_minute_sales`

use dwqa_common::{Date, Month};
use dwqa_core::{
    integrated_schema, questions_for_missing_weather, sales_by_temperature_band,
    IntegrationPipeline, PipelineOptions,
};
use dwqa_corpus::{
    default_cities, generate_distractors, generate_sales, generate_weather_corpus, SalesConfig,
    WeatherConfig,
};
use dwqa_warehouse::{AggFn, CubeQuery, Warehouse};

fn main() {
    // The operational world: a seeded month of weather + correlated sales.
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January),
        &default_cities(),
    );
    let mut store = corpus.store;
    for d in generate_distractors(7, 12) {
        store.add(d);
    }
    let mut warehouse = Warehouse::new(integrated_schema());
    let report = warehouse
        .load(
            "Last Minute Sales",
            generate_sales(&SalesConfig::default(), &default_cities(), &corpus.truth),
        )
        .unwrap();
    println!(
        "Loaded {} last-minute sales into the Figure-1 star.",
        report.inserted
    );

    // A classical BI query the DW could already answer: revenue by city.
    let rs = CubeQuery::on("Last Minute Sales")
        .group_by("Destination", "City")
        .aggregate("price", AggFn::Sum)
        .aggregate("price", AggFn::Count)
        .run(&warehouse)
        .unwrap();
    println!(
        "\nRevenue by destination city (structured data only):\n{}",
        rs.to_table()
    );

    // Steps 1–4.
    let mut pipeline = IntegrationPipeline::build(warehouse, store, PipelineOptions::default());

    // Table 1, regenerated.
    let trace = pipeline.trace("What is the weather like in January of 2004 in El Prat?");
    println!("\n----- Table 1 -----\n{}\n", trace.render());

    // Step 5, driven by the DW-query → QA-question generator.
    let questions =
        questions_for_missing_weather(&pipeline.warehouse, 2004, Month::January).unwrap();
    println!(
        "The DW proposes {} questions; asking one per city and day…",
        questions.len()
    );
    let mut all_questions = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for c in default_cities() {
        if seen.insert(c.city) {
            for d in Date::month_days(2004, Month::January) {
                all_questions.push(format!(
                    "What is the temperature on January {}, 2004 in {}?",
                    d.day(),
                    c.city
                ));
            }
        }
    }
    let read = pipeline.read_path();
    let mut feed = dwqa_core::FeedReport::default();
    for q in &all_questions {
        let answers = read.answer(q);
        feed.absorb(pipeline.apply_feedback(&answers));
    }
    println!(
        "Step 5: {} rows loaded ({} rejected) from {} source pages.",
        feed.loaded,
        feed.rejected.len(),
        feed.urls.len()
    );

    // The paper's motivating analysis.
    let bands = sales_by_temperature_band(&pipeline.warehouse, 5.0).unwrap();
    println!(
        "\nThe range of temperatures that increase last-minute sales:\n{}",
        dwqa_core::analysis::render_bands(&bands)
    );
    if let Some(best) = bands.iter().max_by(|a, b| {
        a.avg_sales_per_day
            .partial_cmp(&b.avg_sales_per_day)
            .unwrap()
    }) {
        println!(
            "=> adjust last-minute prices upward when the destination forecast is in [{}, {}) ºC",
            best.lo, best.hi
        );
    }
}
