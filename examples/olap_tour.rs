//! A tour of the OLAP substrate on its own: load the correlated sales
//! source and exercise slice, dice, roll-up and drill-down — the
//! operations the paper's Section 3 describes over Figure 1.
//!
//! Run with: `cargo run -p dwqa-core --example olap_tour`

use dwqa_common::Month;
use dwqa_corpus::{
    default_cities, generate_sales, generate_weather_corpus, SalesConfig, WeatherConfig,
};
use dwqa_mdmodel::last_minute_sales;
use dwqa_warehouse::{AggFn, CubeQuery, Predicate, Value, Warehouse};

fn main() {
    let truth = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January),
        &default_cities(),
    )
    .truth;
    let mut wh = Warehouse::new(last_minute_sales());
    let report = wh
        .load(
            "Last Minute Sales",
            generate_sales(&SalesConfig::default(), &default_cities(), &truth),
        )
        .unwrap();
    println!(
        "Loaded {} fact rows; dimension members created: {:?}\n",
        report.inserted, report.new_members
    );

    // Roll-up: total revenue per destination country.
    let rs = CubeQuery::on("Last Minute Sales")
        .group_by("Destination", "Country")
        .aggregate("price", AggFn::Sum)
        .run(&wh)
        .unwrap();
    println!("Roll-up to Country:\n{}", rs.to_table());

    // Drill-down: within Spain, revenue per airport.
    let rs = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "Country",
            Predicate::Eq(Value::text("Spain")),
        )
        .group_by("Destination", "Airport")
        .aggregate("price", AggFn::Sum)
        .aggregate("price", AggFn::Count)
        .run(&wh)
        .unwrap();
    println!("Drill-down into Spain by Airport:\n{}", rs.to_table());

    // Slice: one week of January, by city.
    let rs = CubeQuery::on("Last Minute Sales")
        .filter(
            "Date",
            "Date",
            Predicate::Between(
                Value::date(2004, 1, 8).unwrap(),
                Value::date(2004, 1, 14).unwrap(),
            ),
        )
        .group_by("Destination", "City")
        .aggregate("price", AggFn::Avg)
        .run(&wh)
        .unwrap();
    println!("Slice (Jan 8–14) average price by city:\n{}", rs.to_table());

    // Dice: two cities × the whole month, monthly granularity.
    let rs = CubeQuery::on("Last Minute Sales")
        .filter(
            "Destination",
            "City",
            Predicate::In(vec![Value::text("Barcelona"), Value::text("Madrid")]),
        )
        .group_by("Destination", "City")
        .group_by("Date", "Month")
        .aggregate("miles", AggFn::Sum)
        .aggregate("price", AggFn::Max)
        .run(&wh)
        .unwrap();
    println!("Dice (Barcelona, Madrid) by month:\n{}", rs.to_table());

    // Additivity guard: averaging a rate is fine, summing it is refused.
    let err = CubeQuery::on("Last Minute Sales")
        .aggregate("traveler_rate", AggFn::Sum)
        .run(&wh)
        .unwrap_err();
    println!("Summing the non-additive traveler_rate is rejected: {err}");
}
