//! Steps 1–3 in isolation: UML schema → domain ontology → DW enrichment →
//! merge into the mini-WordNet upper ontology → OWL export.
//!
//! Run with: `cargo run -p dwqa-core --example ontology_merge`

use dwqa_mdmodel::{last_minute_sales, render_uml};
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, render_owl, schema_to_ontology, upper_ontology,
    MatchKind, MergeOptions, Relation,
};
use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

fn main() {
    let schema = last_minute_sales();
    println!("----- The UML multidimensional model (Figure 1) -----");
    println!("{}", render_uml(&schema));

    // A few members in the warehouse so Step 2 has content.
    let mut wh = Warehouse::new(schema);
    for (airport, city, state, country) in [
        ("El Prat", "Barcelona", "Catalonia", "Spain"),
        ("JFK", "New York", "New York State", "United States"),
        ("La Guardia", "New York", "New York State", "United States"),
        ("John Wayne", "Costa Mesa", "California", "United States"),
    ] {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(100.0))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(airport)),
                    ("city_name", Value::text(city)),
                    ("state_name", Value::text(state)),
                    ("country_name", Value::text(country)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
        wh.load("Last Minute Sales", vec![b.build()]).unwrap();
    }

    // Step 1.
    let mut domain = schema_to_ontology(wh.schema());
    println!(
        "Step 1: derived {} domain concepts (Figure 2).",
        domain.len()
    );

    // Step 2.
    let enrichment = enrich_from_warehouse(&mut domain, &wh);
    println!(
        "Step 2: enriched with {} DW instances: {:?}",
        enrichment.instances_added, enrichment.per_level
    );

    // Step 3.
    let mut upper = upper_ontology();
    let before = upper.len();
    let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
    println!(
        "Step 3: merged into mini-WordNet ({} → {} concepts): {} exact, {} head-word, {} new-root",
        before,
        upper.len(),
        report.count(MatchKind::Exact),
        report.count(MatchKind::HeadWord),
        report.count(MatchKind::NewRoot),
    );
    for (term, target) in &report.synonyms_enriched {
        println!("  synonym enrichment: {term:?} now names {target:?}");
    }

    // The paper's hypernymy walk: "Last Minute Sales" IS-A sale IS-A … .
    let lms = upper.class_for("Last Minute Sales").unwrap();
    let path: Vec<&str> = upper
        .hypernym_path(lms)
        .into_iter()
        .map(|id| upper.concept(id).canonical())
        .collect();
    println!("\n'Last Minute Sales' hypernym path: {}", path.join(" → "));

    // And "El Prat" knows its city.
    let airport = upper.class_for("airport").unwrap();
    let el_prat = upper
        .concepts_for("El Prat")
        .iter()
        .copied()
        .find(|&id| upper.is_a(id, airport))
        .unwrap();
    let cities: Vec<&str> = upper
        .related(el_prat, Relation::Meronym)
        .iter()
        .map(|&id| upper.concept(id).canonical())
        .collect();
    println!("'El Prat' is an airport located in {cities:?}");

    // OWL export (step 1.b of the paper).
    let owl = render_owl(&upper);
    println!(
        "\nOWL functional-syntax export: {} lines, round-trips = {}",
        owl.lines().count(),
        dwqa_ontology::parse_owl(&owl).map(|o| o.len()) == Some(upper.len())
    );
}
