//! Quickstart: the five-step DW ⇄ QA integration in ~60 lines.
//!
//! Builds a tiny warehouse and a two-page "Web", runs the pipeline, asks
//! the paper's question, feeds the answers back, and runs a roll-up that
//! was impossible before.
//!
//! Run with: `cargo run -p dwqa-core --example quickstart`

use dwqa_core::{
    integrated_schema, sales_by_temperature_band, IntegrationPipeline, PipelineOptions,
};
use dwqa_ir::{DocFormat, Document, DocumentStore};
use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

fn main() {
    // 1. A warehouse with one last-minute sale to El Prat (Barcelona).
    let mut warehouse = Warehouse::new(integrated_schema());
    let mut row = FactRowBuilder::new();
    row.measure("price", Value::Float(149.0))
        .measure("miles", Value::Float(310.0))
        .measure("traveler_rate", Value::Float(0.8))
        .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
        .role_member(
            "Destination",
            &[
                ("airport_name", Value::text("El Prat")),
                ("city_name", Value::text("Barcelona")),
                ("country_name", Value::text("Spain")),
            ],
        )
        .role_member("Customer", &[("customer_name", Value::text("Ann"))])
        .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
    warehouse
        .load("Last Minute Sales", vec![row.build()])
        .unwrap();

    // 2. A two-page "Web": the paper's Figure 4 page and a distractor.
    let mut web = DocumentStore::new();
    web.add(Document::new(
        "http://www.barcelona-tourist-guide.com/en/weather/weather-january.html",
        DocFormat::Plain,
        "Barcelona weather",
        "Saturday, January 31, 2004\n\
         Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today\n\
         Friday, January 30, 2004\n\
         Barcelona Weather: Temperature 7º C around 44.6 F Light rain today",
    ));
    web.add(Document::new(
        "http://news.example.org/jfk",
        DocFormat::Plain,
        "JFK",
        "President JFK was assassinated in 1963. The political temperature rose.",
    ));

    // 3. Steps 1–4: schema→ontology, enrichment, merge, tuning, indexing.
    let mut pipeline = IntegrationPipeline::build(warehouse, web, PipelineOptions::default());
    println!(
        "Steps 1-3: {} DW instances enriched, {} exact concept matches into WordNet",
        pipeline.enrichment.instances_added,
        pipeline.merge.count(dwqa_ontology::MatchKind::Exact),
    );

    // 4. Ask the paper's question over the immutable read path;
    // 5. feed the answers back through the serialized write path.
    let question = "What is the weather like in January of 2004 in El Prat?";
    let answers = pipeline.read_path().answer(question);
    let report = pipeline.apply_feedback(&answers);
    println!("\nQ: {question}");
    for a in &answers {
        println!("A: {} – {}", a.tuple_format(), a.url);
    }
    println!(
        "Step 5: {} rows loaded into the City Weather star",
        report.loaded
    );

    // The analysis that was unanswerable before Step 5.
    let bands = sales_by_temperature_band(&pipeline.warehouse, 5.0).unwrap();
    println!(
        "\nSales per temperature band:\n{}",
        dwqa_core::analysis::render_bands(&bands)
    );
}
