//! Property-based tests over cross-crate invariants.

use dwqa_common::Date;
use dwqa_mdmodel::{Additivity, DataType, SchemaBuilder};
use dwqa_nlp::{analyze_sentence, Lexicon};
use dwqa_ontology::{
    merge_into_upper, parse_owl, render_owl, schema_to_ontology, upper_ontology, MergeOptions,
};
use dwqa_warehouse::{AggFn, CubeQuery, FactRowBuilder, Value, Warehouse};
use proptest::prelude::*;

/// A generated mini-schema: N dimension levels named from a small pool.
fn arb_schema() -> impl Strategy<Value = dwqa_mdmodel::Schema> {
    // Level names deliberately overlap the upper ontology sometimes
    // ("City", "Year") and sometimes not ("Zone").
    let pool = ["City", "Zone", "Region", "Year", "Sector", "Branch"];
    proptest::sample::subsequence(pool.to_vec(), 1..=4).prop_map(|levels| {
        let mut builder = SchemaBuilder::new("Generated").dimension("D", |mut d| {
            for name in &levels {
                d = d.level(name, |l| l.descriptor("name", DataType::Text));
            }
            for pair in levels.windows(2) {
                d = d.rolls_up(pair[0], pair[1]);
            }
            d
        });
        builder = builder.fact("F", |f| {
            f.measure("m", DataType::Float, Additivity::Sum)
                .uses_dimension("D", "D")
        });
        builder.build().expect("generated schema is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Step 1 + Step 3 never lose a class: every schema class is reachable
    /// in the merged upper ontology by its own name.
    #[test]
    fn prop_merge_preserves_all_schema_classes(schema in arb_schema()) {
        let domain = schema_to_ontology(&schema);
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        for name in schema.class_names() {
            prop_assert!(
                upper.class_for(name).is_some(),
                "class {name:?} lost during merge"
            );
        }
    }

    /// The merged ontology always satisfies the structural invariants.
    #[test]
    fn prop_merged_ontology_validates(schema in arb_schema()) {
        let domain = schema_to_ontology(&schema);
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let problems = upper.validate();
        prop_assert!(problems.is_empty(), "{problems:?}");
    }

    /// Merge is idempotent regardless of the schema.
    #[test]
    fn prop_merge_is_idempotent(schema in arb_schema()) {
        let domain = schema_to_ontology(&schema);
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let size = upper.len();
        let second = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        prop_assert_eq!(upper.len(), size);
        prop_assert_eq!(second.instances_added, 0);
    }

    /// The upper ontology OWL round-trip holds after any merge.
    #[test]
    fn prop_owl_round_trip_after_merge(schema in arb_schema()) {
        let domain = schema_to_ontology(&schema);
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let parsed = parse_owl(&render_owl(&upper)).expect("round trip");
        prop_assert_eq!(parsed.len(), upper.len());
    }

    /// SUM equals AVG × COUNT for any loaded warehouse (hash-aggregation
    /// consistency).
    #[test]
    fn prop_sum_equals_avg_times_count(prices in proptest::collection::vec(0.0f64..1000.0, 1..40)) {
        let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
        let rows: Vec<_> = prices
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut b = FactRowBuilder::new();
                b.measure("price", Value::Float(*p))
                    .measure("miles", Value::Float(1.0))
                    .measure("traveler_rate", Value::Float(0.5))
                    .role_member("Origin", &[("airport_name", Value::text("O"))])
                    .role_member(
                        "Destination",
                        &[("airport_name", Value::text(format!("D{}", i % 3)))],
                    )
                    .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                    .role_member(
                        "Date",
                        &[("date", Value::date(2004, 1, (i % 28 + 1) as u32).unwrap())],
                    );
                b.build()
            })
            .collect();
        wh.load("Last Minute Sales", rows).unwrap();
        let rs = CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "Airport")
            .aggregate("price", AggFn::Sum)
            .aggregate("price", AggFn::Avg)
            .aggregate("price", AggFn::Count)
            .run(&wh)
            .unwrap();
        for row in 0..rs.rows.len() {
            let sum = rs.f64(row, "sum(price)").unwrap();
            let avg = rs.f64(row, "avg(price)").unwrap();
            let count = rs.f64(row, "count(price)").unwrap();
            prop_assert!((sum - avg * count).abs() < 1e-6);
        }
        // The global sum matches the inputs.
        let global = CubeQuery::on("Last Minute Sales")
            .aggregate("price", AggFn::Sum)
            .run(&wh)
            .unwrap();
        let want: f64 = prices.iter().sum();
        prop_assert!((global.f64(0, "sum(price)").unwrap() - want).abs() < 1e-6);
    }

    /// The NLP pipeline is total and structurally sound on arbitrary text:
    /// blocks never overlap at the top level and stay within bounds.
    #[test]
    fn prop_chunker_blocks_are_well_formed(s in "[a-zA-Z0-9,.?!º ]{0,120}") {
        let lexicon = Lexicon::english();
        let analyzed = analyze_sentence(&lexicon, &s);
        let mut last_end = 0usize;
        for b in &analyzed.blocks {
            prop_assert!(b.start >= last_end, "top-level blocks overlap");
            prop_assert!(b.end <= analyzed.tokens.len());
            prop_assert!(b.start < b.end);
            last_end = b.end;
            for child in &b.children {
                prop_assert!(child.start >= b.start && child.end <= b.end);
            }
        }
        for e in &analyzed.entities {
            prop_assert!(e.end <= analyzed.tokens.len());
            prop_assert!(e.start < e.end);
        }
    }

    /// Dates mentioned in generated "weather lines" are always recovered
    /// by the entity extractor.
    #[test]
    fn prop_generated_date_lines_are_extracted(days in 1u32..=28, month in 1u32..=12, year in 1990i32..2030) {
        let date = Date::from_ymd(year, month, days).unwrap();
        let lexicon = Lexicon::english();
        let line = date.long_format();
        let analyzed = analyze_sentence(&lexicon, &line);
        let found = analyzed.entities.iter().any(|e| matches!(
            e.kind,
            dwqa_nlp::EntityKind::FullDate(d) if d == date
        ));
        prop_assert!(found, "date {date} not extracted from {line:?}");
    }
}
