//! Cross-crate integration test: the complete five-step scenario of the
//! paper, from the Figure-1 schema to the closing BI analysis.

use dwqa_common::{Date, Month};
use dwqa_core::{
    integrated_schema, questions_for_missing_weather, sales_by_temperature_band,
    IntegrationPipeline, PipelineOptions,
};
use dwqa_corpus::{
    default_cities, generate_distractors, generate_sales, generate_weather_corpus, PageStyle,
    SalesConfig, WeatherConfig,
};
use dwqa_qa::AnswerValue;
use dwqa_warehouse::{AggFn, CubeQuery, Warehouse};

/// Step 5 over a batch: answer each question on the read path and load
/// the answers through the serialized write path.
fn feed_all(pipeline: &mut IntegrationPipeline, questions: &[String]) -> dwqa_core::FeedReport {
    let read = pipeline.read_path();
    let mut merged = dwqa_core::FeedReport::default();
    for q in questions {
        let answers = read.answer(q);
        merged.absorb(pipeline.apply_feedback(&answers));
    }
    merged
}

fn build_world(seed: u64) -> (IntegrationPipeline, dwqa_corpus::GroundTruth) {
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(seed, 2004, Month::January).with_styles(&[PageStyle::Prose]),
        &default_cities(),
    );
    let mut store = corpus.store;
    for d in generate_distractors(seed ^ 0xABCD, 12) {
        store.add(d);
    }
    let mut warehouse = Warehouse::new(integrated_schema());
    warehouse
        .load(
            "Last Minute Sales",
            generate_sales(&SalesConfig::default(), &default_cities(), &corpus.truth),
        )
        .unwrap();
    (
        IntegrationPipeline::build(warehouse, store, PipelineOptions::default()),
        corpus.truth,
    )
}

#[test]
fn five_steps_produce_a_queryable_weather_star() {
    let (mut pipeline, truth) = build_world(42);

    // Steps 1–3 left their traces.
    assert!(pipeline.enrichment.instances_added > 20);
    assert!(pipeline
        .merge
        .synonyms_enriched
        .iter()
        .any(|(term, target)| term == "JFK" && target.contains("Kennedy")));

    // Step 4: the tuned ontology carries the temperature axioms.
    let onto = pipeline.qa.ontology();
    let temp = onto.class_for("temperature").unwrap();
    assert!(!onto.annotation(temp, "axiom.range_c").is_empty());

    // The DW proposes the questions (future-work extension).
    let proposed =
        questions_for_missing_weather(&pipeline.warehouse, 2004, Month::January).unwrap();
    assert_eq!(proposed.len(), 7, "one per destination city: {proposed:?}");

    // Before Step 5: the analysis is empty.
    assert!(sales_by_temperature_band(&pipeline.warehouse, 5.0)
        .unwrap()
        .is_empty());

    // Step 5 over every city and day.
    let mut questions = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for c in default_cities() {
        if seen.insert(c.city) {
            for d in Date::month_days(2004, Month::January) {
                questions.push(format!(
                    "What is the temperature on January {}, 2004 in {}?",
                    d.day(),
                    c.city
                ));
            }
        }
    }
    let report = feed_all(&mut pipeline, &questions);
    assert!(report.loaded > 100, "loaded {}", report.loaded);
    assert!(report.load_rate() > 0.9, "load rate {}", report.load_rate());

    // Every loaded tuple agrees with the generator's ground truth: query
    // the warehouse back and compare.
    let rs = CubeQuery::on("City Weather")
        .group_by("City", "City")
        .group_by("Date", "Date")
        .aggregate("temperature_c", AggFn::Avg)
        .run(&pipeline.warehouse)
        .unwrap();
    assert!(rs.rows.len() > 100);
    for row in &rs.rows {
        let city = row[0].as_text().unwrap();
        let date = row[1].as_date().unwrap();
        let got = row[2].as_f64().unwrap();
        let want = truth.temperature(city, date).unwrap();
        assert!(
            (got - want).abs() < 0.51,
            "{city} {date}: warehouse says {got}, truth {want}"
        );
    }

    // After feeding, the previously proposed questions disappear.
    let remaining =
        questions_for_missing_weather(&pipeline.warehouse, 2004, Month::January).unwrap();
    assert!(remaining.len() < 7, "remaining: {remaining:?}");

    // And the motivating analysis has bands.
    let bands = sales_by_temperature_band(&pipeline.warehouse, 5.0).unwrap();
    assert!(!bands.is_empty());
    let total_days: usize = bands.iter().map(|b| b.days).sum();
    assert!(total_days > 100);
}

#[test]
fn table_1_trace_is_complete_and_faithful() {
    let (pipeline, _) = build_world(42);
    let trace = pipeline.trace("What is the weather like in January of 2004 in El Prat?");
    // Row by row, the shape of the paper's Table 1.
    assert!(trace.query.ends_with("El Prat?"));
    assert!(trace.query_analysis.contains("What WP what"));
    assert!(trace.query_analysis.contains("<@VBC> is VBZ be <@/VBC>"));
    assert!(trace.query_analysis.contains("El NP el Prat NP prat"));
    assert!(trace.question_pattern.contains("[to be]"));
    assert!(trace.question_pattern.contains("weather | temperature"));
    assert_eq!(trace.expected_answer_type, "Number + [ºC | F]");
    assert!(trace.main_sbs.contains(&"El Prat".to_owned()));
    assert!(trace.main_sbs.contains(&"Barcelona".to_owned()));
    assert!(trace.passage.contains("Barcelona Weather: Temperature"));
    assert!(trace.passage_analysis.contains("NP barcelona"));
    assert!(!trace.extracted_answers.is_empty());
    assert!(trace.extracted_answers[0].contains("ºC"));
    assert!(trace.extracted_answers[0].contains("Barcelona"));
}

#[test]
fn answers_carry_full_provenance() {
    let (pipeline, truth) = build_world(7);
    let answers = pipeline
        .read_path()
        .answer("What is the temperature on January 10, 2004 in Barcelona?");
    assert!(!answers.is_empty());
    let top = &answers[0];
    match top.value {
        AnswerValue::Temperature { celsius, .. } => {
            let want = truth
                .temperature("Barcelona", Date::from_ymd(2004, 1, 10).unwrap())
                .unwrap();
            assert!((celsius - want).abs() < 0.51);
        }
        ref v => panic!("expected temperature, got {v:?}"),
    }
    assert_eq!(top.context_date, Date::from_ymd(2004, 1, 10));
    assert_eq!(top.context_location.as_deref(), Some("Barcelona"));
    assert!(top.url.contains("barcelona"));
    assert!(top.sentence.contains("Temperature"));
}

#[test]
fn fed_warehouse_survives_snapshot_round_trip() {
    let (mut pipeline, _) = build_world(42);
    let questions: Vec<String> = ["Barcelona", "Madrid"]
        .iter()
        .flat_map(|c| {
            Date::month_days(2004, Month::January).map(move |d| {
                format!(
                    "What is the temperature on January {}, 2004 in {c}?",
                    d.day()
                )
            })
        })
        .collect();
    feed_all(&mut pipeline, &questions);
    let before = sales_by_temperature_band(&pipeline.warehouse, 5.0).unwrap();
    assert!(!before.is_empty());
    // Persist and restore; the analysis must be identical.
    let json = pipeline.warehouse.to_json();
    let restored = dwqa_warehouse::Warehouse::from_json(&json).unwrap();
    let after = sales_by_temperature_band(&restored, 5.0).unwrap();
    assert_eq!(before, after);
}

#[test]
fn noise_injection_never_pollutes_the_warehouse() {
    // Failure injection: half the weather lines are corrupted; everything
    // that still reaches the DW must match the truth.
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January)
            .with_styles(&[PageStyle::Prose])
            .with_noise(0.5),
        &default_cities(),
    );
    assert!(!corpus.corrupted.is_empty());
    let mut warehouse = Warehouse::new(integrated_schema());
    warehouse
        .load(
            "Last Minute Sales",
            generate_sales(&SalesConfig::default(), &default_cities(), &corpus.truth),
        )
        .unwrap();
    let truth = corpus.truth.clone();
    let mut pipeline =
        IntegrationPipeline::build(warehouse, corpus.store, PipelineOptions::default());
    let questions: Vec<String> = Date::month_days(2004, Month::January)
        .map(|d| {
            format!(
                "What is the temperature on January {}, 2004 in Barcelona?",
                d.day()
            )
        })
        .collect();
    feed_all(&mut pipeline, &questions);
    let rs = dwqa_warehouse::CubeQuery::on("City Weather")
        .group_by("City", "City")
        .group_by("Date", "Date")
        .aggregate("temperature_c", AggFn::Avg)
        .run(&pipeline.warehouse)
        .unwrap();
    for row in &rs.rows {
        let city = row[0].as_text().unwrap();
        let date = row[1].as_date().unwrap();
        let got = row[2].as_f64().unwrap();
        let want = truth.temperature(city, date).unwrap();
        assert!(
            (got - want).abs() < 0.51,
            "corruption leaked: {city} {date} {got} vs {want}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_across_rebuilds() {
    let (p1, _) = build_world(99);
    let (p2, _) = build_world(99);
    let q = "What is the weather like in January of 2004 in Madrid?";
    assert_eq!(p1.read_path().answer(q), p2.read_path().answer(q));
    assert_eq!(p1.trace(q), p2.trace(q));
}
