//! Incremental roll-up maintenance at the `dwqa-core` layer: the
//! [`RollupCache`] registry must stay byte-identical to cold reference
//! recomputes across arbitrary commit / rollback / crash-recovery /
//! query interleavings (differential proptest), and the
//! [`IntegrationPipeline`] must keep its maintained analyses exact
//! through feed faults and WAL recovery (deterministic scenarios).

use dwqa_common::Month;
use dwqa_core::{
    integrated_schema, sales_by_temperature_band, FeedFault, IntegrationPipeline, PipelineOptions,
    RollupCache,
};
use dwqa_corpus::{
    default_cities, generate_sales, generate_weather_corpus, PageStyle, SalesConfig, WeatherConfig,
};
use dwqa_warehouse::testing::{build_query, build_warehouse, sales_batch, Mix};
use dwqa_warehouse::{CubeQuery, Warehouse, DEFAULT_MATERIALIZED_GROUP_LIMIT};
use proptest::prelude::*;

/// Drives one decoded interleaving through a [`RollupCache`], playing
/// the pipeline's part: commits capture an append delta and fold it into
/// the registry at a bumped revision; rollbacks and crash-recoveries
/// replace the warehouse with identical content and leave both the
/// revision and the registry untouched. Every query op must match a cold
/// [`CubeQuery::execute_reference`] recompute exactly.
fn check_cache_interleaving(init_seed: u64, op_seed: u64, query_seeds: &[u64], group_limit: usize) {
    let mut m = Mix(init_seed);
    let init_rows: Vec<u64> = (0..m.below(30)).map(|_| m.word()).collect();
    let mut wh = build_warehouse(&init_rows);
    let queries: Vec<CubeQuery> = query_seeds.iter().map(|&s| build_query(s)).collect();
    let cache = RollupCache::with_group_limit(8, group_limit);
    let mut revision = 0u64;

    let mut ops = Mix(op_seed);
    let n_ops = ops.below(8) + 2;
    for op in 0..=n_ops {
        // Every interleaving ends on a query op so maintained state is
        // always checked at least once.
        let kind = if op == n_ops { 3 } else { ops.below(4) };
        match kind {
            0 => {
                // Commit: fold the append delta into every live entry.
                let tracker = wh.delta_tracker();
                let seeds: Vec<u64> = (0..ops.below(4) + 1).map(|_| ops.word()).collect();
                wh.load("Last Minute Sales", sales_batch(&seeds)).unwrap();
                let delta = wh.delta_since(&tracker).expect("load is a pure append");
                revision += 1;
                cache.apply_delta(&wh, &delta, revision);
            }
            1 => {
                // Rollback: load, then abandon by restoring the
                // pre-load snapshot. No delta, no revision bump — the
                // restored content is exactly what the cache observed.
                let before = wh.snapshot();
                let seeds: Vec<u64> = (0..ops.below(4) + 1).map(|_| ops.word()).collect();
                wh.load("Last Minute Sales", sales_batch(&seeds)).unwrap();
                wh = Warehouse::restore(&before).unwrap();
            }
            2 => {
                // Crash + recovery: the in-memory warehouse is replaced
                // by a replay to identical content. Registry entries key
                // on content extents, not object identity, so they must
                // survive and keep absorbing later deltas.
                wh = Warehouse::restore(&wh.snapshot()).unwrap();
            }
            _ => {
                for q in &queries {
                    let got = cache.run(&wh, revision, q);
                    let want = q.execute_reference(&wh);
                    match (&got, &want) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a, b, "cache diverged from reference for {q:?}")
                        }
                        (Err(a), Err(b)) => assert_eq!(
                            format!("{a:?}"),
                            format!("{b:?}"),
                            "error mismatch for {q:?}"
                        ),
                        _ => panic!(
                            "cache/reference disagreement for {q:?}: \
                             cache={got:?} reference={want:?}"
                        ),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The registry-level invariant: arbitrary interleavings of
    /// commit / rollback / crash-recovery / query, the cache is always
    /// byte-identical to a cold recompute.
    #[test]
    fn prop_cache_matches_cold_recompute(
        init_seed in any::<u64>(),
        op_seed in any::<u64>(),
        query_seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        check_cache_interleaving(
            init_seed, op_seed, &query_seeds, DEFAULT_MATERIALIZED_GROUP_LIMIT,
        );
    }

    /// The same interleavings under a group limit so tight most grouped
    /// entries demote mid-stream and are rebuilt by the next read: the
    /// demote-and-recompute path must be just as exact.
    #[test]
    fn prop_cache_survives_forced_demotion(
        init_seed in any::<u64>(),
        op_seed in any::<u64>(),
        query_seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        check_cache_interleaving(init_seed, op_seed, &query_seeds, 2);
    }
}

/// A small world for the pipeline-level scenarios: three cities, prose
/// pages only, sales seeded from the same ground truth.
fn build_world(seed: u64) -> IntegrationPipeline {
    let cities: Vec<_> = default_cities()
        .into_iter()
        .filter(|c| matches!(c.city, "Barcelona" | "Madrid" | "Paris"))
        .collect();
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(seed, 2004, Month::January).with_styles(&[PageStyle::Prose]),
        &cities,
    );
    let mut warehouse = Warehouse::new(integrated_schema());
    warehouse
        .load(
            "Last Minute Sales",
            generate_sales(&SalesConfig::default(), &cities, &corpus.truth),
        )
        .unwrap();
    IntegrationPipeline::build(warehouse, corpus.store, PipelineOptions::default())
}

/// Temperature questions for `city` over the first `days` of January.
fn questions(city: &str, days: u32) -> Vec<String> {
    (1..=days)
        .map(|d| format!("What is the temperature on January {d}, 2004 in {city}?"))
        .collect()
}

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dwqa-incr-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Feeding through the pipeline maintains the cached analysis in place:
/// no re-scan, and the maintained result equals an uncached recompute
/// against the live warehouse after every commit and rollback.
#[test]
fn maintained_analysis_tracks_feeds_and_rollbacks_exactly() {
    let mut p = build_world(42);
    let read = p.read_path();

    // Warm the registry before any feedback.
    let cold = p.sales_by_temperature_band(5.0).unwrap();
    assert_eq!(cold, sales_by_temperature_band(&p.warehouse, 5.0).unwrap());
    let misses_after_warmup = p.rollup_cache().misses();

    for (i, q) in questions("Barcelona", 6).iter().enumerate() {
        let answers = read.answer(q);
        if i % 2 == 1 {
            // Interleave a faulted (rolled-back) transaction: the
            // maintained entries must be left exactly as they were.
            p.set_feed_fault(Some(FeedFault {
                seed: i as u64,
                rate: 1.0,
            }));
            assert!(p.try_apply_feedback(&answers).is_err());
            p.set_feed_fault(None);
        }
        p.apply_feedback(&answers);
        assert_eq!(
            p.sales_by_temperature_band(5.0).unwrap(),
            sales_by_temperature_band(&p.warehouse, 5.0).unwrap(),
            "maintained analysis diverged after feed {i}"
        );
    }
    assert!(p.rollbacks() >= 3);
    assert_eq!(
        p.rollup_cache().misses(),
        misses_after_warmup,
        "every post-warmup read was served from maintained entries"
    );
}

/// WAL recovery replays the feed history into the same materialized
/// state: a fresh process recovering from the store reproduces the exact
/// analysis the crashed process maintained incrementally.
#[test]
fn recovery_replays_to_the_same_materialized_state() {
    let dir = scratch("recover");
    let mut p = build_world(42);
    p.attach_store_at(&dir).unwrap();
    let read = p.read_path();

    // Warm, then feed — the cached entries absorb each commit's delta.
    let _ = p.sales_by_temperature_band(5.0).unwrap();
    for q in questions("Barcelona", 5)
        .iter()
        .chain(&questions("Madrid", 5))
    {
        p.apply_feedback(&read.answer(q));
    }
    let incremental = p.sales_by_temperature_band(5.0).unwrap();
    assert!(!incremental.is_empty());
    assert_eq!(
        incremental,
        sales_by_temperature_band(&p.warehouse, 5.0).unwrap()
    );

    // "Crash": a fresh process recovers checkpoint + WAL and must
    // converge to the same materialized analysis.
    let mut q = build_world(42);
    let report = q.attach_store_at(&dir).unwrap();
    assert!(report.transactions_replayed > 0 || report.rows_loaded > 0);
    assert_eq!(
        q.sales_by_temperature_band(5.0).unwrap(),
        incremental,
        "recovered analysis diverged from the pre-crash incremental state"
    );

    // And the recovered pipeline keeps maintaining incrementally.
    q.apply_feedback(
        &q.read_path()
            .answer("What is the temperature on January 20, 2004 in Paris?"),
    );
    assert_eq!(
        q.sales_by_temperature_band(5.0).unwrap(),
        sales_by_temperature_band(&q.warehouse, 5.0).unwrap()
    );
}
