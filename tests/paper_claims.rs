//! The paper's headline claims, asserted as tests.
//!
//! Each test pins one comparative claim from the paper's introduction or
//! evaluation so a regression in any substrate that would silently change
//! the *story* fails loudly.

use dwqa_common::{Date, Month};
use dwqa_core::{
    evaluate_temperatures, integrated_schema, preprocess_tables, IntegrationPipeline,
    PipelineOptions,
};
use dwqa_corpus::{
    default_cities, generate_distractors, generate_weather_corpus, PageStyle, WeatherConfig,
};
use dwqa_ir::DocumentStore;
use dwqa_qa::{IeBaseline, IeTemplate, IrBaseline};
use dwqa_warehouse::Warehouse;

fn corpus(styles: &[PageStyle]) -> (DocumentStore, dwqa_corpus::GroundTruth) {
    let c = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January).with_styles(styles),
        &default_cities(),
    );
    let mut store = c.store;
    for d in generate_distractors(5, 12) {
        store.add(d);
    }
    (store, c.truth)
}

fn pipeline(store: DocumentStore, skip_enrichment: bool) -> IntegrationPipeline {
    // Sales are irrelevant for extraction-quality claims, but enrichment
    // needs members: load one sale per airport.
    let mut warehouse = Warehouse::new(integrated_schema());
    let mut rows = Vec::new();
    for c in default_cities() {
        let mut b = dwqa_warehouse::FactRowBuilder::new();
        b.measure("price", dwqa_warehouse::Value::Float(100.0))
            .measure("miles", dwqa_warehouse::Value::Float(500.0))
            .measure("traveler_rate", dwqa_warehouse::Value::Float(0.5))
            .role_member(
                "Origin",
                &[("airport_name", dwqa_warehouse::Value::text("Elsewhere"))],
            )
            .role_member(
                "Destination",
                &[
                    ("airport_name", dwqa_warehouse::Value::text(c.airport)),
                    ("city_name", dwqa_warehouse::Value::text(c.city)),
                    ("state_name", dwqa_warehouse::Value::text(c.state)),
                    ("country_name", dwqa_warehouse::Value::text(c.country)),
                ],
            )
            .role_member(
                "Customer",
                &[("customer_name", dwqa_warehouse::Value::text("Ann"))],
            )
            .role_member(
                "Date",
                &[("date", dwqa_warehouse::Value::date(2004, 1, 1).unwrap())],
            );
        rows.push(b.build());
    }
    warehouse.load("Last Minute Sales", rows).unwrap();
    IntegrationPipeline::build(
        warehouse,
        store,
        PipelineOptions::builder()
            .skip_enrichment(skip_enrichment)
            .build()
            .unwrap(),
    )
}

fn daily_eval(
    pipeline: &IntegrationPipeline,
    truth: &dwqa_corpus::GroundTruth,
    city: &str,
) -> dwqa_core::ExtractionEval {
    let read = pipeline.read_path();
    let mut answers = Vec::new();
    for d in Date::month_days(2004, Month::January) {
        let q = format!(
            "What is the temperature on January {}, 2004 in {}?",
            d.day(),
            city
        );
        answers.extend(read.answer(&q).into_iter().next());
    }
    let expected: Vec<(String, Date)> = Date::month_days(2004, Month::January)
        .map(|d| (city.to_owned(), d))
        .collect();
    evaluate_temperatures(&answers, |c, d| truth.temperature(c, d), &expected, 0.51)
}

#[test]
fn claim_prose_pages_yield_high_precision() {
    // §4.2: "the best precision … is obtained for [the prose] URL".
    let (store, truth) = corpus(&[PageStyle::Prose]);
    let p = pipeline(store, false);
    let eval = daily_eval(&p, &truth, "Barcelona");
    assert!(eval.precision() >= 0.95, "precision {}", eval.precision());
    assert!(eval.recall() >= 0.6, "recall {}", eval.recall());
}

#[test]
fn claim_tables_defeat_extraction_until_preprocessed() {
    // §4.2: "lower precision is obtained from web pages that contain
    // tables"; §5: table pre-processing is the future-work fix.
    let (store, truth) = corpus(&[PageStyle::Table]);
    let raw = daily_eval(&pipeline(clone_store(&store), false), &truth, "Barcelona");
    assert_eq!(raw.true_positives, 0, "raw tables should extract nothing");

    let (prepped, rewritten) = preprocess_tables(&store);
    assert!(rewritten > 0);
    let fixed = daily_eval(&pipeline(prepped, false), &truth, "Barcelona");
    assert!(fixed.recall() > 0.5, "recall {}", fixed.recall());
    assert!(fixed.precision() >= 0.95, "precision {}", fixed.precision());
}

#[test]
fn claim_enrichment_improves_airport_questions() {
    // §3 Step 2: DW instances let the system resolve "El Prat"/"JFK".
    let (store, truth) = corpus(&[PageStyle::Prose]);
    let with = daily_eval(&pipeline(clone_store(&store), false), &truth, "El Prat");
    let without = daily_eval(&pipeline(store, true), &truth, "El Prat");
    assert_eq!(
        without.true_positives, 0,
        "without Step 2, El Prat is unknown"
    );
    assert!(with.true_positives > 10, "with Step 2: {with:?}");
}

#[test]
fn claim_ir_returns_text_not_tuples() {
    // §1: "IR returns whole documents, in which the user has to further
    // search for his/her request."
    let (store, truth) = corpus(&[PageStyle::Prose]);
    let ir = IrBaseline::build(&store);
    let hits = ir.search_documents(
        "What is the weather like in January of 2004 in Barcelona?",
        1,
    );
    assert!(!hits.is_empty());
    // The answer exists in the text — but only as text to read.
    let any_answer = Date::month_days(2004, Month::January)
        .filter_map(|d| truth.temperature("Barcelona", d))
        .any(|t| hits[0].contains_answer(&format!("{t}º C")));
    assert!(any_answer);
    assert!(
        hits[0].reading_burden() > 1000,
        "burden {}",
        hits[0].reading_burden()
    );
}

#[test]
fn claim_ie_is_bounded_by_its_templates() {
    // §2: IE "is limited to a set of predefined templates".
    let (store, _) = corpus(&[PageStyle::Prose]);
    let ie = IeBaseline::new(vec![IeTemplate::Temperature]);
    let filled = ie.scan(&store);
    assert!(!filled.is_empty());
    assert!(filled.iter().all(|f| f.template == IeTemplate::Temperature));
    assert!(!ie.covers(IeTemplate::Price));
}

#[test]
fn claim_distractors_never_contaminate_the_feed() {
    // The political-temperature/JFK-president/band traps must not reach
    // the warehouse.
    let (store, _) = corpus(&[PageStyle::Prose]);
    let mut p = pipeline(store, false);
    let answers = p
        .read_path()
        .answer("What is the temperature in January of 2004 in JFK?");
    let report = p.apply_feedback(&answers);
    for url in &report.urls {
        assert!(
            !url.contains("news.example.org") || report.loaded == 0,
            "distractor fed the DW: {url}"
        );
    }
    assert!(report.loaded > 0);
}

#[test]
fn claim_inside_company_sources_are_first_class() {
    // §1: unstructured data "comes from both inside the company (e.g. the
    // reports or emails from the company personnel stored in the company
    // intranet) and outside". QA answers a fare question straight from an
    // intranet email/report.
    let (mut store, _) = corpus(&[PageStyle::Prose]);
    let intranet = dwqa_corpus::generate_intranet(
        11,
        &["Barcelona", "Madrid"],
        2004,
        dwqa_common::Month::January,
    );
    for d in intranet.documents.clone() {
        store.add(d);
    }
    let p = pipeline(store, false);
    let answers = p
        .read_path()
        .answer("What is the price of a last minute flight to Barcelona?");
    let promo = &intranet.promotions[0];
    assert_eq!(promo.city, "Barcelona");
    assert!(
        answers.iter().any(|a| {
            a.url.starts_with("intranet://")
                && matches!(
                    &a.value,
                    dwqa_qa::AnswerValue::Money { amount, .. }
                        if *amount == f64::from(promo.price_euros)
                )
        }),
        "expected the intranet fare {}: {answers:?}",
        promo.price_euros
    );
}

fn clone_store(store: &DocumentStore) -> DocumentStore {
    let mut out = DocumentStore::new();
    for (_, d) in store.iter() {
        out.add(d.clone());
    }
    out
}
