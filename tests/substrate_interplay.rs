//! Integration tests across substrate boundaries that the end-to-end
//! scenario does not exercise directly: OWL round-trips of merged
//! ontologies, the multidimensional-IR baseline over corpus metadata,
//! schema-generic transforms, and format handling through the whole
//! pipeline.

use dwqa_common::{Date, Month};
use dwqa_corpus::{default_cities, generate_weather_corpus, PageStyle, WeatherConfig};
use dwqa_ir::{CubeSlice, DocFormat, InvertedIndex, MultidimensionalIndex};
use dwqa_mdmodel::patient_treatments;
use dwqa_nlp::Lexicon;
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, parse_owl, render_owl, schema_to_ontology,
    upper_ontology, MergeOptions, Relation,
};
use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

// The mdir (McCabe et al.) baseline works off the generated corpus's
// location × time metadata.
#[test]
fn multidimensional_ir_slices_the_generated_corpus() {
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January),
        &default_cities(),
    );
    let lexicon = Lexicon::english();
    let index = InvertedIndex::build(&lexicon, &corpus.store);
    let md = MultidimensionalIndex::build(&corpus.store);

    // Slice to Barcelona: prose + table pages.
    let bcn = md.slice(&CubeSlice::all().location("Barcelona"));
    assert_eq!(bcn.len(), 2);
    // OLAP-filtered term search only sees the slice.
    let hits = md.search(
        &index,
        &["temperature".to_owned()],
        &CubeSlice::all().location("Barcelona"),
        10,
    );
    assert!(!hits.is_empty());
    for h in &hits {
        assert!(bcn.contains(&h.doc));
    }
    // Time roll-up: everything is January 2004.
    assert_eq!(
        md.slice(&CubeSlice::all().month(2004, Month::January))
            .len(),
        corpus.store.len()
    );
    assert!(md.slice(&CubeSlice::all().year(1998)).is_empty());
}

#[test]
fn merged_ontology_survives_owl_round_trip() {
    let mut wh = Warehouse::new(dwqa_mdmodel::last_minute_sales());
    let mut b = FactRowBuilder::new();
    b.measure("price", Value::Float(1.0))
        .measure("miles", Value::Float(1.0))
        .measure("traveler_rate", Value::Float(0.5))
        .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
        .role_member(
            "Destination",
            &[
                ("airport_name", Value::text("El Prat")),
                ("city_name", Value::text("Barcelona")),
            ],
        )
        .role_member("Customer", &[("customer_name", Value::text("Ann"))])
        .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
    wh.load("Last Minute Sales", vec![b.build()]).unwrap();

    let mut domain = schema_to_ontology(wh.schema());
    enrich_from_warehouse(&mut domain, &wh);
    let mut upper = upper_ontology();
    merge_into_upper(&domain, &mut upper, &MergeOptions::default());

    let owl = render_owl(&upper);
    let parsed = parse_owl(&owl).expect("merged ontology parses back");
    assert_eq!(parsed.len(), upper.len());
    // The DW-fed El Prat instance survived with its geography and
    // provenance.
    let airport = parsed.class_for("airport").unwrap();
    let el_prat = parsed
        .concepts_for("El Prat")
        .iter()
        .copied()
        .find(|&id| parsed.is_a(id, airport))
        .expect("El Prat survives serialization");
    assert_eq!(parsed.annotation(el_prat, "source"), vec!["dw"]);
    let cities: Vec<&str> = parsed
        .related(el_prat, Relation::Meronym)
        .iter()
        .map(|&id| parsed.concept(id).canonical())
        .collect();
    assert_eq!(cities, ["Barcelona"]);
}

#[test]
fn transform_and_merge_are_schema_generic() {
    // The hospital schema flows through Steps 1 and 3 untouched by any
    // airline assumptions.
    let schema = patient_treatments();
    let domain = schema_to_ontology(&schema);
    let mut upper = upper_ontology();
    let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
    // "Patient" is not in the mini-WordNet: head-word/new-root path.
    assert!(report
        .class_matches
        .iter()
        .any(|(label, _)| label == "Patient"));
    // "Treatments" singularises onto nothing; "Date"/"Month"/"Year" map
    // exactly.
    let exact: Vec<&str> = report
        .class_matches
        .iter()
        .filter(|(_, k)| *k == dwqa_ontology::MatchKind::Exact)
        .map(|(l, _)| l.as_str())
        .collect();
    for expected in ["Date", "Month", "Year"] {
        assert!(exact.contains(&expected), "{expected} should map exactly");
    }
}

#[test]
fn all_three_document_formats_flow_through_extraction() {
    // The paper: "our approach handles any kind of unstructured data
    // (e.g. XML, HTML or PDF)". The generated corpus rotates formats;
    // every format must yield extractable prose text.
    let corpus = generate_weather_corpus(
        &WeatherConfig::new(42, 2004, Month::January).with_styles(&[PageStyle::Prose]),
        &default_cities(),
    );
    let mut seen = std::collections::HashSet::new();
    for (_, doc) in corpus.store.iter() {
        seen.insert(doc.format);
        assert!(
            doc.text.contains("Weather: Temperature"),
            "format {:?} lost the readings for {}",
            doc.format,
            doc.url
        );
    }
    assert!(seen.contains(&DocFormat::Plain));
    assert!(seen.contains(&DocFormat::Html));
    assert!(seen.contains(&DocFormat::Xml));
}

#[test]
fn conformed_date_dimension_joins_both_stars() {
    // Loading sales and weather that share dates must reuse the same
    // dimension members (conformed dimension), not duplicate them.
    let mut wh = Warehouse::new(dwqa_core::integrated_schema());
    let mut sale = FactRowBuilder::new();
    sale.measure("price", Value::Float(10.0))
        .measure("miles", Value::Float(10.0))
        .measure("traveler_rate", Value::Float(0.5))
        .role_member("Origin", &[("airport_name", Value::text("A"))])
        .role_member("Destination", &[("airport_name", Value::text("B"))])
        .role_member("Customer", &[("customer_name", Value::text("Ann"))])
        .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
    wh.load("Last Minute Sales", vec![sale.build()]).unwrap();

    let mut weather = FactRowBuilder::new();
    weather
        .measure("temperature_c", Value::Float(8.0))
        .role_member("City", &[("City.city_name", Value::text("Barcelona"))])
        .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())])
        .role_member("Source", &[("url", Value::text("u"))]);
    wh.load("City Weather", vec![weather.build()]).unwrap();

    // One shared member for 2004-01-31.
    assert_eq!(wh.dimension("Date").unwrap().len(), 1);
    assert_eq!(
        wh.dimension("Date")
            .unwrap()
            .lookup(&Value::Date(Date::from_ymd(2004, 1, 31).unwrap()))
            .map(|k| k.index()),
        Some(0)
    );
}
