//! Tracing must be a pure observer: switching the tracer on cannot
//! change a single byte of any answer or outcome, and a traced batch
//! must leave exactly one root span per question in the flight
//! recorder, reorderable into input order via the `batch_index` root
//! field even though workers complete in arbitrary order.

use dwqa_bench::{build_fixture, daily_questions, FixtureConfig};
use dwqa_core::ReadPath;
use dwqa_corpus::PageStyle;
use dwqa_engine::QaEngine;
use proptest::prelude::*;
use std::sync::OnceLock;

fn read_path() -> ReadPath {
    static FIXTURE: OnceLock<ReadPath> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            build_fixture(FixtureConfig {
                styles: vec![PageStyle::Prose],
                ..FixtureConfig::default()
            })
            .pipeline
            .read_path()
        })
        .clone()
}

/// The question pool: per-day questions over two cities, plus a few
/// that retrieval answers with nothing.
fn pool() -> Vec<String> {
    let mut qs = daily_questions("Barcelona", 2004, dwqa_common::Month::January);
    qs.extend(daily_questions("Madrid", 2004, dwqa_common::Month::January));
    qs.push("What is the population of Atlantis?".to_owned());
    qs.push("Where does the rain in Spain mainly fall?".to_owned());
    qs
}

/// A rendering of everything observable about a batch's results.
fn fingerprint(reports: &[dwqa_engine::QuestionReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!("{:?}|{:?}\n", r.outcome, r.answers));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tracing_changes_no_answer_and_roots_cover_the_batch(
        picks in proptest::collection::vec(0usize..64, 1..24),
        workers in 1usize..5,
    ) {
        let pool = pool();
        let questions: Vec<String> =
            picks.iter().map(|&i| pool[i % pool.len()].clone()).collect();

        let untraced = QaEngine::over(read_path())
            .with_workers(workers)
            .with_tracing(false);
        let traced = QaEngine::over(read_path())
            .with_workers(workers)
            .with_tracing(true)
            .with_trace_capacity(questions.len());

        let plain = untraced.answer_batch_checked(&questions);
        let observed = traced.answer_batch_checked(&questions);

        // Byte-identical answers and outcomes, in input order.
        prop_assert_eq!(fingerprint(&plain), fingerprint(&observed));

        // Exactly one root span per question; batch_index reorders the
        // completion-ordered recorder back into input order.
        let traces = traced.flight_recorder().recent();
        prop_assert_eq!(traces.len(), questions.len());
        let mut by_index: Vec<Option<String>> = vec![None; questions.len()];
        for trace in &traces {
            let root = trace.root().expect("every trace has a root span");
            prop_assert_eq!(root.name, "question");
            let idx = root
                .field("batch_index")
                .and_then(|v| v.as_u64())
                .expect("root carries batch_index") as usize;
            prop_assert!(idx < questions.len(), "batch_index out of range");
            prop_assert!(by_index[idx].is_none(), "duplicate batch_index {idx}");
            by_index[idx] = Some(trace.label.clone());
        }
        for (i, label) in by_index.iter().enumerate() {
            prop_assert_eq!(label.as_deref(), Some(questions[i].as_str()));
        }

        // The untraced engine recorded nothing.
        prop_assert!(untraced.flight_recorder().is_empty());
    }
}
