//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::
//! iter`/`iter_batched`, `BatchSize`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple but honest
//! measurement loop: warm-up, automatic iteration scaling, then
//! `sample_size` timed samples reported as min/mean/max per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id, used inside groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run in the measured section.
    iters: u64,
    /// Measured wall time of the iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in &mut inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibrate: find an iteration count taking roughly `target` per sample.
    let target = Duration::from_millis(40);
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher); // warm-up + calibration probe
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let samples = sample_size.clamp(2, 100);
    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter_times.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_times[0];
    let max = per_iter_times[per_iter_times.len() - 1];
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_duration(Duration::from_secs_f64(min)),
        fmt_duration(Duration::from_secs_f64(mean)),
        fmt_duration(Duration::from_secs_f64(max)),
        samples,
        iters,
    );
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        run_samples(&id.into().id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_samples(&id, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_samples(&id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // minimal harness runs everything and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        for n in [1u32, 2] {
            group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| b.iter(|| n * 2));
        }
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default();
        c.sample_size(2);
        sample_bench(&mut c);
    }
}
