//! Offline stand-in for the `crossbeam::thread::scope` API, backed by
//! `std::thread::scope` (stabilised in Rust 1.63, after crossbeam's
//! scoped threads were designed). Only the surface this workspace uses
//! is provided: `scope(|s| ...)` returning a `Result`, and
//! `Scope::spawn` whose closure receives the scope again for nested
//! spawns.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The error half carries the payload of a panicked child thread.
    /// With the std backing, child panics propagate during join instead,
    /// so `scope` in practice returns `Ok` or unwinds.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope in which spawned threads must finish before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        crate::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 10);
    }

    #[test]
    fn join_handle_returns_value() {
        let out = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            let hits = &hits;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }
}
