//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! poison-free API, implemented over `std::sync`. A poisoned std lock
//! (a panic while held) is transparently recovered, matching
//! parking_lot's behaviour of not propagating poison.

#![forbid(unsafe_code)]

use std::sync;

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
