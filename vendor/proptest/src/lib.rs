//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! A [`Strategy`] here is a seeded generator without shrinking: each
//! `proptest!` test derives a deterministic RNG from its own name and
//! runs `cases` generated inputs through the body, reporting the failing
//! input via the panic message. Supported strategies: integer/float
//! ranges, a small regex subset for strings (`[class]{m,n}` and
//! `\PC{m,n}`), `any::<T>()`, `collection::vec`, `option::of`,
//! `sample::subsequence`, `Just`, and `prop_map`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner configuration and the per-test driver.

    use super::*;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one `proptest!`-generated test deterministically.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Seeds the runner from the test name so every run regenerates
        /// the same case sequence.
        pub fn new(config: ProptestConfig, test_name: &str) -> TestRunner {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// A seeded value generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Marker trait backing [`any`].
pub trait ArbitraryValue: Sized + std::fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, wide-range floats; NaN/inf shapes are not needed here.
        let mantissa = rng.gen_range(-1.0..1.0);
        let exp = rng.gen_range(-60..60i32);
        mantissa * (2.0f64).powi(exp)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Size bounds for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max_inclusive)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Strategy for vectors of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::*;

    /// Strategy for `Option<S::Value>` (`None` with probability 1/4, as
    //  upstream's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::*;

    /// Strategy for ordered subsequences of a source vector.
    pub struct Subsequence<T> {
        source: Vec<T>,
        size: SizeRange,
    }

    /// An ordered subsequence of `source` whose length falls in `size`.
    pub fn subsequence<T: Clone + std::fmt::Debug>(
        source: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        let size = size.into();
        assert!(
            size.max_inclusive <= source.len(),
            "subsequence size exceeds source length"
        );
        Subsequence { source, size }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let k = self.size.pick(rng);
            // Floyd's algorithm for k distinct indices, then sort to keep
            // the subsequence ordered.
            let n = self.source.len();
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = rng.gen_range(0..=j);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }
}

/// A compiled pattern strategy for `&str` literals: supports `[class]`
/// character classes (with `a-z` ranges) and `\PC` (any non-control
/// char), each followed by an optional `{n}` / `{m,n}` repetition.
#[derive(Debug)]
pub struct StringPattern {
    units: Vec<(CharSet, usize, usize)>,
}

#[derive(Debug)]
enum CharSet {
    /// Explicit characters and inclusive ranges.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character.
    Printable,
}

impl CharSet {
    fn pick(&self, rng: &mut StdRng) -> char {
        match self {
            CharSet::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap_or(lo)
            }
            CharSet::Printable => {
                // Mostly ASCII, with occasional multi-byte characters so
                // offset/UTF-8 handling gets exercised.
                if rng.gen_bool(0.85) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
                } else {
                    const EXOTIC: &[char] = &[
                        'º', 'é', 'ñ', 'ü', '€', '—', '中', '語', '😀', '∑', '\u{00A0}',
                    ];
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                }
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> StringPattern {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut units = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // ']'
                CharSet::Class(ranges)
            }
            '\\' => {
                let tail: String = chars[i..].iter().collect();
                assert!(
                    tail.starts_with("\\PC"),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                CharSet::Printable
            }
            c => {
                i += 1;
                CharSet::Class(vec![(c, c)])
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n = body.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        units.push((set, min, max));
    }
    StringPattern { units }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let compiled = parse_pattern(self);
        let mut out = String::new();
        for (set, min, max) in &compiled.units {
            let n = rng.gen_range(*min..=*max);
            for _ in 0..n {
                out.push(set.pick(rng));
            }
        }
        out
    }
}

/// Runs property tests; mirrors the upstream macro's surface for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    $( let $arg = $crate::Strategy::generate(&$strat, runner.rng()); )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} of {} failed with input:",
                            stringify!($name)
                        );
                        $( eprintln!("  {} = {:?}", stringify!($arg), $arg); )+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = crate::Strategy::generate(&"[a-zA-Z ]{0,10}", &mut rng);
            assert!(t.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
            let u = crate::Strategy::generate(&"\\PC{0,80}", &mut rng);
            assert!(u.chars().count() <= 80);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn subsequence_is_ordered_and_within_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool = vec![1, 2, 3, 4, 5, 6];
        for _ in 0..200 {
            let sub = crate::Strategy::generate(
                &crate::sample::subsequence(pool.clone(), 1..=4),
                &mut rng,
            );
            assert!((1..=4).contains(&sub.len()));
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "{sub:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_generates_and_runs(xs in crate::collection::vec(0i64..10, 0..5), s in "[a-z]{0,3}") {
            prop_assert!(xs.len() < 5);
            prop_assert!(s.len() <= 3);
        }
    }
}
