//! Offline stand-in for the `rand` API surface this workspace uses:
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and the `Rng` extension
//! methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic from its seed, which is all
//! the synthetic-corpus generators need. Streams differ from the real
//! `rand` crate's `StdRng` (ChaCha12); nothing in the workspace depends
//! on the upstream streams, only on seed-reproducibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range (or distribution) values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

fn uniform_u64_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the top `zone` keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample_from(rng) as f32
    }
}

/// Types drawable from the "standard" distribution, as in `rng.gen::<T>()`.
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl SampleStandard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> f32 {
        unit_f64(rng) as f32
    }
}

impl SampleStandard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }

    /// A draw from the standard distribution for `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<i64> = (0..8).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(1..=28u32);
            assert!((1..=28).contains(&inc));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "{hits}");
    }

    #[test]
    fn full_width_ranges_cover_extremes_safely() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
    }
}
