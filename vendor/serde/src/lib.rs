//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based, format-agnostic core, values are
//! lowered to a self-describing [`Content`] tree which `serde_json`
//! (also vendored) renders to and parses from JSON. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` proc-macros that
//! generate [`Serialize`]/[`Deserialize`] impls following serde's default
//! external tagging conventions, so the workspace's derives and JSON
//! round-trips behave like the real crate for the shapes used here
//! (plain structs, newtype structs, and enums without generics).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the meeting point of serialization
/// ([`Serialize::to_content`]) and deserialization
/// ([`Deserialize::from_content`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer out of `i64` range.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A string-keyed map, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self`.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, validating shape and ranges.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

fn mismatch(expected: &str, got: &Content) -> Error {
    Error(format!("expected {expected}, found {}", got.kind()))
}

/// Extracts a struct field during derived deserialization. Missing keys
/// surface as errors naming the field (serde's behaviour for
/// non-`Option` fields); `Option` fields tolerate absence through their
/// own impl via [`Content::Null`].
pub fn field<T: Deserialize>(map: &Content, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::from_content(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => {
            T::from_content(&Content::Null).map_err(|_| Error(format!("missing field `{name}`")))
        }
    }
}

macro_rules! impl_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide = match content {
                    Content::I64(v) => i128::from(*v),
                    Content::U64(v) => i128::from(*v),
                    other => return Err(mismatch("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ints!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        if let Ok(v) = i64::try_from(*self) {
            Content::I64(v)
        } else {
            Content::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::I64(v) => {
                u64::try_from(*v).map_err(|_| Error(format!("integer {v} out of range for u64")))
            }
            Content::U64(v) => Ok(*v),
            other => Err(mismatch("integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) if v.chars().count() == 1 => Ok(v.chars().next().unwrap()),
            other => Err(mismatch("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(mismatch("sequence", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(mismatch("2-element sequence", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(mismatch("3-element sequence", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(mismatch("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()), Ok(42));
        assert_eq!(u32::from_content(&7u32.to_content()), Ok(7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_owned().to_content()),
            Ok("hi".to_owned())
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<i64>> = vec![Some(1), None, Some(-3)];
        let back = Vec::<Option<i64>>::from_content(&v.to_content()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuples_round_trip() {
        let v = ("a".to_owned(), 3usize);
        let back = <(String, usize)>::from_content(&v.to_content()).unwrap();
        assert_eq!(v, back);
    }
}
