//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the build
//! environment has no syn/quote). Supports the shapes this workspace
//! derives on: non-generic structs (named, tuple/newtype, unit) and
//! non-generic enums whose variants are unit (optionally with explicit
//! discriminants), tuple, or struct-like. Representation follows serde's
//! defaults: named structs → maps, newtype structs → their inner value,
//! enums → externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips outer attributes (`#[...]`, including expanded doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(_)) = self.peek() {
                self.pos += 1; // [...]
            }
        }
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Skips tokens until a comma at angle-bracket depth 0, consuming the
    /// comma. Used to skip field types and discriminant expressions.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(group_stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(group_stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cur.skip_until_comma();
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group_stream: TokenStream) -> usize {
    let mut cur = Cursor::new(group_stream);
    let mut count = 0;
    loop {
        cur.skip_attributes();
        cur.skip_visibility();
        if cur.at_end() {
            break;
        }
        cur.skip_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(group_stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group_stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                cur.pos += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= 1`) and the trailing comma.
        cur.skip_until_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn serialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_content(&self) -> ::serde::Content {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str("    ::serde::Content::Null\n"),
                Fields::Tuple(1) => {
                    out.push_str("    ::serde::Serialize::to_content(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("    ::serde::Content::Seq(vec![");
                    for i in 0..*n {
                        out.push_str(&format!("::serde::Serialize::to_content(&self.{i}), "));
                    }
                    out.push_str("])\n");
                }
                Fields::Named(names) => {
                    out.push_str("    ::serde::Content::Map(vec![\n");
                    for f in names {
                        out.push_str(&format!(
                            "      (\"{f}\".to_owned(), ::serde::Serialize::to_content(&self.{f})),\n"
                        ));
                    }
                    out.push_str("    ])\n");
                }
            }
            out.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_content(&self) -> ::serde::Content {{\n    match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "      {name}::{vn} => ::serde::Content::Str(\"{vn}\".to_owned()),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "      {name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_owned(), ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        out.push_str(&format!(
                            "      {name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_owned(), ::serde::Content::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_owned(), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "      {name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\"{vn}\".to_owned(), ::serde::Content::Map(vec![{}]))]),\n",
                            fs.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            out.push_str("    }\n  }\n}\n");
        }
    }
    out
}

fn deserialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str(&format!(
                    "    match content {{ ::serde::Content::Null => Ok({name}), other => Err(::serde::Error(format!(\"expected null for unit struct {name}, found {{}}\", other.kind()))) }}\n"
                )),
                Fields::Tuple(1) => out.push_str(&format!(
                    "    Ok({name}(::serde::Deserialize::from_content(content)?))\n"
                )),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                        .collect();
                    out.push_str(&format!(
                        "    match content {{ ::serde::Content::Seq(items) if items.len() == {n} => Ok({name}({})), other => Err(::serde::Error(format!(\"expected {n}-element sequence for {name}, found {{}}\", other.kind()))) }}\n",
                        elems.join(", ")
                    ));
                }
                Fields::Named(names) => {
                    let fields_src: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(content, \"{f}\")?"))
                        .collect();
                    out.push_str(&format!(
                        "    match content {{\n      ::serde::Content::Map(_) => Ok({name} {{ {} }}),\n      other => Err(::serde::Error(format!(\"expected map for struct {name}, found {{}}\", other.kind()))),\n    }}\n",
                        fields_src.join(", ")
                    ));
                }
            }
            out.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n    match content {{\n"
            ));
            // Unit variants arrive as bare strings.
            out.push_str("      ::serde::Content::Str(tag) => match tag.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!("        \"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            out.push_str(&format!(
                "        other => Err(::serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n      }},\n"
            ));
            // Data variants arrive as single-entry maps.
            out.push_str(
                "      ::serde::Content::Map(entries) if entries.len() == 1 => {\n        let (tag, value) = &entries[0];\n        match tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => out.push_str(&format!(
                        "          \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(value)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "          \"{vn}\" => match value {{ ::serde::Content::Seq(items) if items.len() == {n} => Ok({name}::{vn}({})), other => Err(::serde::Error(format!(\"expected {n}-element sequence for {name}::{vn}, found {{}}\", other.kind()))) }},\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let fields_src: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?"))
                            .collect();
                        out.push_str(&format!(
                            "          \"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            fields_src.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "          other => Err(::serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n        }}\n      }},\n"
            ));
            out.push_str(&format!(
                "      other => Err(::serde::Error(format!(\"expected string or map for enum {name}, found {{}}\", other.kind()))),\n    }}\n  }}\n}}\n"
            ));
        }
    }
    out
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
