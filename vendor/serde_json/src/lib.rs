//! Offline stand-in for `serde_json`, over the vendored serde's
//! [`Content`] tree.
//!
//! Writes canonical JSON (string escapes per RFC 8259, floats via Rust's
//! shortest-round-trip formatting — the `float_roundtrip` behaviour of
//! the real crate) and parses it back with a small recursive-descent
//! parser. Only the API surface this workspace uses is provided:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// `Result` alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serializes a value to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content_pretty(&value.to_content(), &mut out, 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) -> Result<()> {
    if !v.is_finite() {
        return Err(Error("JSON cannot represent a non-finite float".to_owned()));
    }
    // Rust's Display is the shortest representation that round-trips; add
    // `.0` when it prints as an integer so the value parses back as a float.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_content(c: &Content, out: &mut String) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out)?,
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_content_pretty(c: &Content, out: &mut String, depth: usize) -> Result<()> {
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_content_pretty(item, out, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
            Ok(())
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_content_pretty(v, out, depth + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
            Ok(())
        }
        other => write_content(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 8.0, -0.0] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nbreak \"quoted\" \\ tab\t ºC 中 😀".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Escaped input parses too.
        assert_eq!(from_str::<String>(r#""ºC 😀""#).unwrap(), "ºC 😀");
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<(String, Vec<Option<f64>>)> =
            vec![("a".into(), vec![Some(1.5), None]), ("b".into(), vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<Option<f64>>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<i64>("{not json").is_err());
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("42 junk").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1i64, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<i64>>>(&pretty).unwrap(), v);
    }
}
